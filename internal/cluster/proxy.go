package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// Response headers the proxy adds so clients (and tests) can observe
// routing without parsing metrics: the replica that served the request
// and how many attempts it took (1 = no failover).
const (
	HeaderReplica  = "X-Edf-Replica"
	HeaderAttempts = "X-Edf-Attempts"
	// HeaderOwner names a sticky session's owner: the serving replica on
	// session replies, or the unavailable owner on 503 replies when no
	// takeover peer could inherit the session.
	HeaderOwner = "X-Edf-Owner"
	// HeaderTakeover names the dead replica a session was taken over
	// from, on replies served by the takeover peer that rehydrated it
	// from the shared store.
	HeaderTakeover = "X-Edf-Takeover"
)

// Defaults for Config's zero values.
const (
	DefaultHealthInterval = 2 * time.Second
	defaultHealthTimeout  = 2 * time.Second
	maxRequestBytes       = 8 << 20
	// maxTrackedSessions bounds the proxy's session->owner map; replicas
	// bound real sessions themselves (MaxSessions, TTL sweeping), this
	// only caps the proxy's bookkeeping for leaked ids.
	maxTrackedSessions = 1 << 16
)

// Config tunes a Proxy.
type Config struct {
	// Replicas are the edfd base URLs ("http://127.0.0.1:8081"). At least
	// one is required; all start healthy and on the ring.
	Replicas []string
	// VirtualNodes is the ring's points-per-replica count; <= 0 selects
	// DefaultVirtualNodes.
	VirtualNodes int
	// HealthInterval spaces background /healthz sweeps once Start runs;
	// 0 selects DefaultHealthInterval.
	HealthInterval time.Duration
	// Client carries replica traffic; nil selects a keep-alive transport
	// sized for a small replica fleet.
	Client *http.Client
	// TraceCapacity bounds the retained request traces; 0 selects
	// obs.DefaultTraceCapacity.
	TraceCapacity int
	// Logger receives structured routing and replica lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
}

// Proxy is the consistent-hash cluster router over edfd replicas.
// Construct with New, optionally Start the background health checker,
// and mount Handler on an http.Server.
type Proxy struct {
	hc      *http.Client
	started time.Time

	mu      sync.Mutex
	ring    *Ring
	healthy map[string]bool   // over the configured replica set
	owners  map[string]string // session id -> owner replica
	creates uint64            // round-robin key for seedless session creates

	m          proxyMetrics
	healthStop chan struct{}
	healthTick time.Duration

	// schemaMu guards schemaModels, the fleet's supported workload models
	// fetched lazily from GET /v1/schema (nil until the first successful
	// fetch; the gate fails open meanwhile).
	schemaMu     sync.Mutex
	schemaModels map[string]bool

	log    *slog.Logger
	traces *obs.Recorder
	// stop ends the fleet feed relays so a graceful shutdown is not held
	// open by streaming clients.
	stop      chan struct{}
	closeOnce sync.Once
}

// New builds a proxy over the configured replicas. Every replica starts
// healthy; the first failed request or health sweep ejects it.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: at least one replica required")
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			// A replica that accepts connections but never answers (wedged
			// process, SIGSTOP) must still trigger failover: cap the wait
			// for response headers just above edfd's own per-request
			// deadline, after which a live replica would have answered 503.
			ResponseHeaderTimeout: service.DefaultRequestTimeout + 5*time.Second,
		}}
	}
	tick := cfg.HealthInterval
	if tick <= 0 {
		tick = DefaultHealthInterval
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	p := &Proxy{
		hc:         hc,
		started:    time.Now(),
		ring:       NewRing(cfg.VirtualNodes),
		healthy:    make(map[string]bool, len(cfg.Replicas)),
		owners:     make(map[string]string),
		healthTick: tick,
		log:        log,
		traces:     obs.NewRecorder(cfg.TraceCapacity),
		stop:       make(chan struct{}),
	}
	for _, rep := range cfg.Replicas {
		rep = strings.TrimRight(rep, "/")
		if rep == "" {
			return nil, errors.New("cluster: empty replica URL")
		}
		if _, dup := p.healthy[rep]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica %s", rep)
		}
		p.healthy[rep] = true
		p.ring.Add(rep)
	}
	return p, nil
}

// Start launches the background health checker. Calling Start twice is
// an error in the caller; Close stops the checker.
func (p *Proxy) Start() {
	p.healthStop = make(chan struct{})
	go p.healthLoop(p.healthStop)
}

// Close stops the background health checker (a no-op without Start) and
// ends open fleet feed streams.
func (p *Proxy) Close() {
	if p.healthStop != nil {
		close(p.healthStop)
		p.healthStop = nil
	}
	p.closeOnce.Do(func() { close(p.stop) })
}

// Handler returns the routed proxy handler.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", p.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", p.handleBatch)
	mux.HandleFunc("POST /v1/partition", p.handlePartition)
	mux.HandleFunc("GET /v1/analyzers", p.handleAnalyzers)
	mux.HandleFunc("GET /v1/schema", p.handleSchema)
	mux.HandleFunc("POST /v1/sessions", p.handleSessionCreate)
	mux.HandleFunc("/v1/sessions/{id}", p.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{action}", p.handleSession)
	mux.HandleFunc("GET /v1/events", p.handleEvents)
	mux.HandleFunc("GET /v1/traces", p.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", p.handleTrace)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.m.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		// Streaming observability reads and the ops endpoints are not
		// traced; everything else mints (or adopts) a trace here, and
		// post() propagates its ID to the replicas so their spans land
		// under the same ID.
		if !strings.HasPrefix(r.URL.Path, "/v1/") || service.StreamingPath(r.URL.Path) {
			mux.ServeHTTP(w, r)
			return
		}
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		tr := obs.StartTrace(id, service.OpFor(r))
		w.Header().Set(obs.TraceHeader, id)
		mux.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		p.traces.Record(tr)
		p.log.Debug("request routed", "op", tr.Op, "trace", tr.ID, "session", tr.Session)
	})
}

// routeKey is the ring key of a workload: its content-addressed
// fingerprint under a fixed (empty) analyzer and zero options. Every
// request about the same workload — any analyzer, any options — lands on
// the same replica, so that replica's cache accumulates all of the
// workload's results.
func routeKey(wl workload.Workload) string {
	fp, _ := engine.WorkloadFingerprint(wl, "", core.Options{})
	return fp
}

// seqFor snapshots the failover sequence for a key under the lock.
func (p *Proxy) seqFor(key string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.Seq(key)
}

// setHealthy flips one replica's state, rebalancing the ring on a
// transition. It returns whether the state changed.
func (p *Proxy) setHealthy(rep string, ok bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	was, known := p.healthy[rep]
	if !known || was == ok {
		return false
	}
	p.healthy[rep] = ok
	if ok {
		p.ring.Add(rep)
		p.m.readmissions.Add(1)
		defer p.log.Info("replica readmitted", "replica", rep)
	} else {
		p.ring.Remove(rep)
		p.m.ejections.Add(1)
		defer p.log.Warn("replica ejected", "replica", rep)
	}
	return true
}

func (p *Proxy) isHealthy(rep string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy[rep]
}

// replicaCounts returns (healthy, configured).
func (p *Proxy) replicaCounts() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ok := range p.healthy {
		if ok {
			n++
		}
	}
	return n, len(p.healthy)
}

// replicaStates snapshots the health map in sorted order.
func (p *Proxy) replicaStates() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(p.healthy))
	for rep, ok := range p.healthy {
		out[rep] = ok
	}
	return out
}

func (p *Proxy) ownedSessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.owners)
}

// healthLoop sweeps every replica until stop closes.
func (p *Proxy) healthLoop(stop <-chan struct{}) {
	t := time.NewTicker(p.healthTick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.CheckReplicas(context.Background())
		case <-stop:
			return
		}
	}
}

// CheckReplicas probes every configured replica's /healthz once,
// ejecting the failed and re-admitting the recovered with ring
// rebalancing. It is the body of the background checker and is exported
// so tests and operators can force an immediate sweep.
func (p *Proxy) CheckReplicas(ctx context.Context) {
	states := p.replicaStates()
	var wg sync.WaitGroup
	for rep := range states {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, defaultHealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(hctx, http.MethodGet, rep+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := p.hc.Do(req)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			p.setHealthy(rep, ok)
		}()
	}
	wg.Wait()
}

// retryable reports whether a replica status is worth a failover: the
// replica is saturated (429) or transiently failing (502/503/504). The
// analysis endpoints are idempotent — re-running an analysis elsewhere
// can only produce the same result — so retrying is always sound there.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// post sends one upstream request. A transport-level failure ejects the
// replica immediately (passive health detection); the background checker
// re-admits it when /healthz answers again.
func (p *Proxy) post(ctx context.Context, method, rep, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tr := obs.FromContext(ctx); tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil { // the replica failed, not the client
			p.setHealthy(rep, false)
		}
		return nil, err
	}
	return resp, nil
}

// forward tries the request on each node of seq in order, streaming the
// first acceptable response through to the client. It returns the
// serving replica and attempt count for callers that post-process.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, seq []string, method, path string, body []byte) (served string, resp *http.Response, ok bool) {
	if len(seq) == 0 {
		p.m.noReplica.Add(1)
		p.fail(w, http.StatusServiceUnavailable, errors.New("no healthy replica on the ring"))
		return "", nil, false
	}
	tr := obs.FromContext(r.Context())
	span := func(rep string, start time.Time, detail string) {
		if tr == nil {
			return
		}
		tr.AddSpan(obs.Span{
			Name:    "forward",
			StartNS: start.Sub(tr.Start()).Nanoseconds(),
			DurNS:   time.Since(start).Nanoseconds(),
			Replica: rep,
			Detail:  detail,
		})
	}
	attempts := 0
	for i, rep := range seq {
		attempts++
		if i > 0 {
			p.m.failovers.Add(1)
		}
		start := time.Now()
		rs, err := p.post(r.Context(), method, rep, path, body)
		if err != nil {
			span(rep, start, "error: "+err.Error())
			if r.Context().Err() != nil {
				p.fail(w, http.StatusServiceUnavailable, fmt.Errorf("client canceled: %w", err))
				return "", nil, false
			}
			continue
		}
		if retryable(rs.StatusCode) && i < len(seq)-1 {
			span(rep, start, "retryable status "+strconv.Itoa(rs.StatusCode))
			io.Copy(io.Discard, rs.Body)
			rs.Body.Close()
			continue
		}
		span(rep, start, "status "+strconv.Itoa(rs.StatusCode))
		w.Header().Set(HeaderReplica, rep)
		w.Header().Set(HeaderAttempts, strconv.Itoa(attempts))
		return rep, rs, true
	}
	p.m.upstreamErrors.Add(1)
	p.fail(w, http.StatusBadGateway, fmt.Errorf("all %d replicas failed for %s", len(seq), path))
	return "", nil, false
}

// stream copies an upstream response through to the client. SSE bodies
// (a relayed per-session feed) are flushed per chunk so events reach the
// subscriber as they happen instead of sitting in the response buffer.
func (p *Proxy) stream(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	sse := strings.HasPrefix(ct, obs.SSEContentType)
	if sse {
		for _, h := range []string{"Cache-Control", "X-Accel-Buffering"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
	}
	w.WriteHeader(resp.StatusCode)
	if fl, ok := w.(http.Flusher); ok && sse {
		fl.Flush()
		_, _ = io.Copy(flushWriter{w: w, fl: fl}, resp.Body)
		return
	}
	_, _ = io.Copy(w, resp.Body)
}

// flushWriter flushes after every write, for live stream relays.
type flushWriter struct {
	w  io.Writer
	fl http.Flusher
}

func (f flushWriter) Write(b []byte) (int, error) {
	n, err := f.w.Write(b)
	f.fl.Flush()
	return n, err
}

func (p *Proxy) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, req, ok := decodeBody[service.AnalyzeRequest](p, w, r)
	if !ok {
		return
	}
	if !p.gateModel(w, r, req.Workload) {
		return
	}
	p.m.analyzeRouted.Add(1)
	_, resp, ok := p.forward(w, r, p.seqFor(routeKey(req.Workload)), http.MethodPost, "/v1/analyze", body)
	if ok {
		p.stream(w, resp)
	}
}

// handlePartition routes a placement request by its workload's
// fingerprint: all requests about the same partitioned workload land on
// one replica, whose cache then holds every per-bin verdict — and since
// bin checks use the plain sporadic fingerprint domain, single-bin
// /v1/analyze traffic for the same scaled task sets shares them.
func (p *Proxy) handlePartition(w http.ResponseWriter, r *http.Request) {
	body, req, ok := decodeBody[service.PartitionRequest](p, w, r)
	if !ok {
		return
	}
	if !p.gateModel(w, r, req.Workload) {
		return
	}
	p.m.partitionRouted.Add(1)
	_, resp, ok := p.forward(w, r, p.seqFor(routeKey(req.Workload)), http.MethodPost, "/v1/partition", body)
	if ok {
		p.stream(w, resp)
	}
}

func (p *Proxy) handleAnalyzers(w http.ResponseWriter, r *http.Request) {
	// Registries are identical across replicas; any healthy one answers.
	_, resp, ok := p.forward(w, r, p.seqFor("analyzers"), http.MethodGet, "/v1/analyzers", nil)
	if ok {
		p.stream(w, resp)
	}
}

func (p *Proxy) handleSchema(w http.ResponseWriter, r *http.Request) {
	// Schemas are identical across replicas; any healthy one answers.
	_, resp, ok := p.forward(w, r, p.seqFor("schema"), http.MethodGet, "/v1/schema", nil)
	if ok {
		p.stream(w, resp)
	}
}

// fleetModels returns the workload models the fleet supports, fetched
// once from GET /v1/schema of the first replica that answers and cached
// for the proxy's lifetime (registries are static per fleet). It
// returns nil while no replica has answered yet — callers fail open.
func (p *Proxy) fleetModels(ctx context.Context) map[string]bool {
	p.schemaMu.Lock()
	defer p.schemaMu.Unlock()
	if p.schemaModels != nil {
		return p.schemaModels
	}
	for _, rep := range p.seqFor("schema") {
		resp, err := p.post(ctx, http.MethodGet, rep, "/v1/schema", nil)
		if err != nil {
			continue
		}
		var sr service.SchemaResponse
		err = json.NewDecoder(io.LimitReader(resp.Body, maxRequestBytes)).Decode(&sr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil || len(sr.Models) == 0 {
			continue
		}
		models := make(map[string]bool, len(sr.Models))
		for _, m := range sr.Models {
			models[m] = true
		}
		p.schemaModels = models
		return models
	}
	return nil
}

// gateModel rejects a workload whose model the fleet's declared schema
// does not list, before any forwarding. An unreachable schema fails
// open: the replica owns the rejection then.
func (p *Proxy) gateModel(w http.ResponseWriter, r *http.Request, wl workload.Workload) bool {
	models := p.fleetModels(r.Context())
	if models == nil || models[string(wl.Kind())] {
		return true
	}
	p.m.modelRejections.Add(1)
	p.fail(w, http.StatusBadRequest,
		fmt.Errorf("workload model %q is not supported by the fleet (see GET /v1/schema)", wl.Kind()))
	return false
}

// subBatch is the slice of a batch bound for one replica.
type subBatch struct {
	seq      []string // failover sequence of the group's first set
	origSets []int    // original set indices, ascending
	req      service.BatchRequest
}

func (p *Proxy) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, req, ok := decodeBody[service.BatchRequest](p, w, r)
	if !ok {
		return
	}
	p.m.batchRequests.Add(1)
	if len(req.Sets) == 0 {
		// Forward the degenerate request untouched; the replica owns the
		// error contract.
		_, resp, ok := p.forward(w, r, p.seqFor("batch-empty"), http.MethodPost, "/v1/batch", body)
		if ok {
			p.stream(w, resp)
		}
		return
	}

	// Partition the sets over the ring by workload fingerprint.
	groups := make(map[string]*subBatch)
	var order []string // first-touched order, for deterministic dispatch
	for i, set := range req.Sets {
		seq := p.seqFor(routeKey(set.Workload))
		if len(seq) == 0 {
			p.m.noReplica.Add(1)
			p.fail(w, http.StatusServiceUnavailable, errors.New("no healthy replica on the ring"))
			return
		}
		owner := seq[0]
		g, exists := groups[owner]
		if !exists {
			g = &subBatch{seq: seq, req: service.BatchRequest{
				Analyzers: req.Analyzers, Options: req.Options, Workers: req.Workers,
			}}
			groups[owner] = g
			order = append(order, owner)
		}
		g.origSets = append(g.origSets, i)
		g.req.Sets = append(g.req.Sets, set)
	}

	// One owner: the common case for small batches — forward the original
	// body untouched, no re-merge needed.
	if len(groups) == 1 {
		g := groups[order[0]]
		_, resp, ok := p.forward(w, r, g.seq, http.MethodPost, "/v1/batch", body)
		if ok {
			p.stream(w, resp)
		}
		return
	}

	// Fan the sub-batches out concurrently; each fails over independently
	// along its own ring sequence.
	type groupResult struct {
		g        *subBatch
		resp     service.BatchResponse
		served   string
		attempts int
		start    time.Time
		dur      time.Duration
		err      error
	}
	results := make([]groupResult, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		p.m.batchSplits.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := groups[owner]
			results[gi] = groupResult{g: g, start: time.Now()}
			defer func() { results[gi].dur = time.Since(results[gi].start) }()
			payload, err := json.Marshal(g.req)
			if err != nil {
				results[gi].err = err
				return
			}
			results[gi].resp, results[gi].served, results[gi].attempts, results[gi].err = p.subBatchCall(r.Context(), g.seq, payload)
		}()
	}
	wg.Wait()
	// Spans are added after the barrier: a Trace is single-goroutine by
	// contract, so the parallel dispatchers only record timings.
	if tr := obs.FromContext(r.Context()); tr != nil {
		for _, gr := range results {
			detail := fmt.Sprintf("%d sets, %d attempts", len(gr.g.origSets), gr.attempts)
			if gr.err != nil {
				detail = "error: " + gr.err.Error()
			}
			tr.AddSpan(obs.Span{
				Name:    "sub-batch",
				StartNS: gr.start.Sub(tr.Start()).Nanoseconds(),
				DurNS:   gr.dur.Nanoseconds(),
				Replica: gr.served,
				Detail:  detail,
			})
		}
	}

	// Re-merge in deterministic set-major order: per-set job runs keep
	// their within-set (analyzer) order, set indices are rewritten back to
	// the caller's numbering, and sets are emitted in request order.
	perSet := make([][]service.BatchJobJSON, len(req.Sets))
	served := map[string]bool{}
	attempts := 1
	for _, gr := range results {
		if gr.served != "" {
			served[gr.served] = true
		}
		attempts = max(attempts, gr.attempts)
		if gr.err != nil {
			// A replica's own 4xx is the client's error, not an upstream
			// fault: relay it with its original status so the contract
			// does not depend on how the batch happened to shard.
			var rse *replicaStatusError
			if errors.As(gr.err, &rse) && rse.status < 500 {
				p.fail(w, rse.status, rse)
				return
			}
			p.m.upstreamErrors.Add(1)
			p.fail(w, http.StatusBadGateway, fmt.Errorf("batch split failed: %w", gr.err))
			return
		}
		for _, job := range gr.resp.Results {
			if job.SetIndex < 0 || job.SetIndex >= len(gr.g.origSets) {
				p.fail(w, http.StatusBadGateway,
					fmt.Errorf("replica returned set index %d for a %d-set sub-batch", job.SetIndex, len(gr.g.origSets)))
				return
			}
			orig := gr.g.origSets[job.SetIndex]
			job.SetIndex = orig
			perSet[orig] = append(perSet[orig], job)
		}
	}
	out := service.BatchResponse{Results: make([]service.BatchJobJSON, 0, len(req.Sets))}
	for _, jobs := range perSet {
		out.Results = append(out.Results, jobs...)
	}
	p.m.batchJobs.Add(uint64(len(out.Results)))
	// Attempts reports the worst sub-batch, so a failover anywhere in the
	// split is visible to the client.
	w.Header().Set(HeaderAttempts, strconv.Itoa(attempts))
	w.Header().Set(HeaderReplica, strings.Join(sortedKeys(served), ","))
	writeJSON(w, http.StatusOK, out)
}

// subBatchCall runs one sub-batch with failover, decoding the reply. It
// returns the replica that actually served (which differs from the
// planned owner after a failover) and the attempt count.
func (p *Proxy) subBatchCall(ctx context.Context, seq []string, payload []byte) (service.BatchResponse, string, int, error) {
	var lastErr error
	tries := 0
	for i, rep := range seq {
		tries++
		if i > 0 {
			p.m.failovers.Add(1)
		}
		resp, err := p.post(ctx, http.MethodPost, rep, "/v1/batch", payload)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return service.BatchResponse{}, "", tries, err
			}
			continue
		}
		out, err, retry := decodeSubBatch(rep, resp)
		if err == nil {
			return out, rep, tries, nil
		}
		lastErr = err
		if !retry {
			break
		}
	}
	return service.BatchResponse{}, "", tries, lastErr
}

// replicaStatusError is a replica's authoritative non-2xx answer. The
// split path relays it verbatim, so a client error (400 analyzer spec,
// 422 invalid set) keeps its status and body no matter how the batch
// sharded — the same contract a single edfd gives.
type replicaStatusError struct {
	status int
	msg    string
}

func (e *replicaStatusError) Error() string { return e.msg }

// decodeSubBatch consumes one sub-batch response. retry reports whether
// the failure is worth the next ring node; an authoritative bad answer
// (4xx, undecodable body) is not.
func decodeSubBatch(rep string, resp *http.Response) (service.BatchResponse, error, bool) {
	defer resp.Body.Close()
	if retryable(resp.StatusCode) {
		io.Copy(io.Discard, resp.Body)
		return service.BatchResponse{}, fmt.Errorf("replica %s: status %d", rep, resp.StatusCode), true
	}
	if resp.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		if er.Error == "" {
			er.Error = fmt.Sprintf("replica %s: status %d", rep, resp.StatusCode)
		}
		return service.BatchResponse{}, &replicaStatusError{resp.StatusCode, er.Error}, false
	}
	var out service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return service.BatchResponse{}, fmt.Errorf("replica %s: %w", rep, err), false
	}
	return out, nil, false
}

func (p *Proxy) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, req, ok := decodeBody[service.SessionRequest](p, w, r)
	if !ok {
		return
	}
	// Seeded sessions ride the seed's fingerprint (the admission cascade
	// re-analyzes grown variants of it, so affinity helps the cache);
	// seedless sessions spread round-robin over the ring.
	var key string
	if !req.Workload.IsZero() && req.Workload.Len() > 0 {
		key = routeKey(req.Workload)
	} else {
		p.mu.Lock()
		p.creates++
		key = "session-create-" + strconv.FormatUint(p.creates, 10)
		p.mu.Unlock()
	}
	// Creation is NOT idempotent: a create whose connection dies after
	// the replica committed it would leak a duplicate session if retried
	// elsewhere. Unlike analyze/batch it gets exactly one attempt — the
	// failed node is ejected passively, so a client retry lands on a
	// rebalanced ring.
	seq := p.seqFor(key)
	if len(seq) > 1 {
		seq = seq[:1]
	}
	rep, resp, ok := p.forward(w, r, seq, http.MethodPost, "/v1/sessions", body)
	if !ok {
		return
	}
	defer resp.Body.Close()
	// Buffer the (small) reply to learn the session id before relaying.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		p.fail(w, http.StatusBadGateway, fmt.Errorf("reading session reply: %w", err))
		return
	}
	if resp.StatusCode == http.StatusCreated {
		var sr service.SessionResponse
		if json.Unmarshal(payload, &sr) == nil && sr.ID != "" {
			p.recordOwner(sr.ID, rep)
			p.m.sessionCreates.Add(1)
		}
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(payload)
}

// recordOwner maps a session to its creator under the tracking bound.
func (p *Proxy) recordOwner(id, rep string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.owners) >= maxTrackedSessions {
		for victim := range p.owners { // arbitrary eviction; replicas hold the truth
			delete(p.owners, victim)
			break
		}
	}
	p.owners[id] = rep
}

// ownerOf resolves a session's owner: the recorded creator, or — for ids
// this proxy never saw created (restart, second proxy) — the ring-hash
// of the session id as a best-effort guess.
func (p *Proxy) ownerOf(id string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if rep, ok := p.owners[id]; ok {
		return rep
	}
	return p.ring.Get(id)
}

func (p *Proxy) dropOwner(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.owners, id)
}

// handleSession routes every /v1/sessions/{id}[/...] verb to the sticky
// owner. Sessions are stateful, so there is no blind failover — a
// takeover happens only when the owner is actually down (marked
// unhealthy, or failing a request AND the confirming health probe), and
// then the proxy reassigns the session to the next healthy ring node,
// which rehydrates it from the shared durable store. Only when no peer
// can serve the session (no peer left, or the fleet runs without a
// store) does the client see the 503 naming the owner.
func (p *Proxy) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owner := p.ownerOf(id)
	if owner == "" {
		p.m.noReplica.Add(1)
		p.fail(w, http.StatusServiceUnavailable, errors.New("no healthy replica on the ring"))
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		p.fail(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	if len(body) == 0 {
		body = nil
	}
	tr := obs.FromContext(r.Context())
	if tr != nil {
		tr.Session = id
	}
	if !p.isHealthy(owner) {
		p.orphanOrTakeover(w, r, id, owner, body,
			fmt.Errorf("session %s is owned by replica %s, which is unavailable", id, owner))
		return
	}
	p.m.sessionRoutes.Add(1)
	start := time.Now()
	resp, err := p.post(r.Context(), r.Method, owner, r.URL.Path, body)
	if tr != nil {
		detail := ""
		if err != nil {
			detail = "error: " + err.Error()
		} else {
			detail = "status " + strconv.Itoa(resp.StatusCode)
		}
		tr.AddSpan(obs.Span{
			Name:    "route",
			StartNS: start.Sub(tr.Start()).Nanoseconds(),
			DurNS:   time.Since(start).Nanoseconds(),
			Replica: owner,
			Detail:  detail,
		})
	}
	if err != nil {
		// A failed request does not prove the owner is dead: it may have
		// applied the decision with only the response lost (timeout,
		// reset), and re-executing it on a takeover peer would duplicate
		// the admit/commit while the live owner keeps its own copy of the
		// session. Probe the owner before any takeover: only a
		// confirmed-dead owner loses the session; a live one is
		// re-admitted and the client gets the 503 naming it, so a retry
		// lands back on the same replica.
		if r.Context().Err() != nil {
			p.fail(w, http.StatusServiceUnavailable, fmt.Errorf("client canceled: %w", err))
			return
		}
		if p.confirmDead(owner) {
			p.orphanOrTakeover(w, r, id, owner, body,
				fmt.Errorf("session %s: owner replica %s failed: %v", id, owner, err))
			return
		}
		p.m.sessionOrphans.Add(1)
		w.Header().Set(HeaderOwner, owner)
		p.fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("session %s: request to owner replica %s failed but the owner is alive, retry: %v", id, owner, err))
		return
	}
	// The owner no longer knows the session (closed, TTL-swept) — or the
	// client closed it; either way the sticky mapping is stale.
	if resp.StatusCode == http.StatusNotFound ||
		(resp.StatusCode == http.StatusNoContent && r.Method == http.MethodDelete) {
		p.dropOwner(id)
	}
	w.Header().Set(HeaderReplica, owner)
	w.Header().Set(HeaderOwner, owner)
	w.Header().Set(HeaderAttempts, "1")
	p.stream(w, resp)
}

// confirmDead probes a failed owner's /healthz synchronously. post
// already ejected the replica passively; this distinguishes a dead
// process (probe fails too — takeover may proceed) from a transient
// request failure against a live one (probe answers — the failed
// request may have been applied there, so the session must stay put).
// An answering owner is re-admitted to the ring on the spot.
func (p *Proxy) confirmDead(owner string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), defaultHealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		p.setHealthy(owner, true)
		return false
	}
	return true
}

// orphanOrTakeover handles a dead session owner: try a takeover peer
// first, and only 503 (naming the owner, so the typed client can
// attribute the failure) when no peer could inherit the session.
func (p *Proxy) orphanOrTakeover(w http.ResponseWriter, r *http.Request, id, owner string, body []byte, cause error) {
	if p.takeover(w, r, id, owner, body) {
		return
	}
	p.m.sessionOrphans.Add(1)
	w.Header().Set(HeaderOwner, owner)
	p.fail(w, http.StatusServiceUnavailable, cause)
}

// takeover reassigns a dead owner's session to the next healthy ring
// node. The peer rehydrates the session from the shared store on the
// miss path, so the request is served — not 503d — and later requests
// stick to the new owner. A 404 from the peer means it could not
// rehydrate (the fleet runs without a shared store, or the session
// really is gone): the caller falls back to the orphan 503 so a
// store-less cluster keeps its old contract.
func (p *Proxy) takeover(w http.ResponseWriter, r *http.Request, id, deadOwner string, body []byte) bool {
	var target string
	for _, rep := range p.seqFor(id) {
		if rep != deadOwner {
			target = rep
			break
		}
	}
	if target == "" {
		return false
	}
	start := time.Now()
	resp, err := p.post(r.Context(), r.Method, target, r.URL.Path, body)
	if tr := obs.FromContext(r.Context()); tr != nil {
		detail := "from " + deadOwner
		if err != nil {
			detail = "error: " + err.Error()
		} else {
			detail += ", status " + strconv.Itoa(resp.StatusCode)
		}
		tr.AddSpan(obs.Span{
			Name:    "takeover",
			StartNS: start.Sub(tr.Start()).Nanoseconds(),
			DurNS:   time.Since(start).Nanoseconds(),
			Replica: target,
			Detail:  detail,
		})
	}
	if err != nil {
		p.m.takeoverFailed.Add(1)
		return false
	}
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		p.m.takeoverFailed.Add(1)
		return false
	}
	p.m.takeovers.Add(1)
	p.recordOwner(id, target)
	p.log.Info("session taken over", "session", id, "from", deadOwner, "to", target)
	if resp.StatusCode == http.StatusNoContent && r.Method == http.MethodDelete {
		p.dropOwner(id)
	}
	w.Header().Set(HeaderReplica, target)
	w.Header().Set(HeaderOwner, target)
	w.Header().Set(HeaderTakeover, deadOwner)
	w.Header().Set(HeaderAttempts, "2")
	p.stream(w, resp)
	return true
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy, total := p.replicaCounts()
	states := p.replicaStates()
	reps := make(map[string]string, len(states))
	for rep, ok := range states {
		if ok {
			reps[rep] = "healthy"
		} else {
			reps[rep] = "unhealthy"
		}
	}
	status, code := "ok", http.StatusOK
	if healthy == 0 {
		status, code = "no healthy replicas", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"healthy":   healthy,
		"replicas":  reps,
		"total":     total,
		"uptime_ns": time.Since(p.started).Nanoseconds(),
	})
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := p.replicaStates()
	var mu sync.Mutex
	var scrapes []replicaScrape
	var wg sync.WaitGroup
	for rep, ok := range states {
		if !ok {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := p.post(r.Context(), http.MethodGet, rep, "/metrics", nil)
			if err != nil || resp.StatusCode != http.StatusOK {
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				return
			}
			defer resp.Body.Close()
			samples, types, err := parseScrape(io.LimitReader(resp.Body, maxRequestBytes))
			if err != nil {
				p.log.Warn("unparseable replica metrics page", "replica", rep, "err", err)
				return
			}
			mu.Lock()
			scrapes = append(scrapes, replicaScrape{replica: rep, samples: samples, types: types})
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(scrapes, func(i, j int) bool { return scrapes[i].replica < scrapes[j].replica })
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p.writeMetrics(w, scrapes)
}

// decodeBody reads the full request body and decodes it as T, answering
// 400 itself on failure. The raw bytes come back too, so forwarding
// reuses the client's exact payload instead of a re-encoding.
func decodeBody[T any](p *Proxy, w http.ResponseWriter, r *http.Request) ([]byte, T, bool) {
	var req T
	body, err := io.ReadAll(r.Body)
	if err != nil {
		p.fail(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return nil, req, false
	}
	if err := json.Unmarshal(body, &req); err != nil {
		p.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return nil, req, false
	}
	return body, req, true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fail writes the service's uniform typed error body.
func (p *Proxy) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, service.ErrorFor(code, err).Response())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
