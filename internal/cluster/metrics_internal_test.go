package cluster

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestParseScrapeDropsDerived asserts quantile and ratio series are
// dropped at scrape time — they are recomputed from summable parts.
func TestParseScrapeDropsDerived(t *testing.T) {
	page := strings.NewReader(strings.Join([]string{
		"# TYPE edfd_cache_hits counter",
		"edfd_cache_hits 5",
		"# TYPE edfd_cache_hit_rate gauge",
		"edfd_cache_hit_rate 0.5000",
		"# TYPE edfd_propose_ns histogram",
		`edfd_propose_ns_bucket{le="1024"} 6`,
		`edfd_propose_ns_bucket{le="+Inf"} 7`,
		"edfd_propose_ns_sum 9000",
		"edfd_propose_ns_count 7",
		"# TYPE edfd_propose_ns_p50 gauge",
		"edfd_propose_ns_p50 1024",
		"# TYPE edfd_propose_ns_p99 gauge",
		"edfd_propose_ns_p99 8192",
	}, "\n"))
	samples, types, err := parseScrape(page)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, s := range samples {
		got[s.Key()] = true
	}
	for _, dropped := range []string{"edfd_cache_hit_rate", "edfd_propose_ns_p50", "edfd_propose_ns_p99"} {
		if got[dropped] {
			t.Errorf("parseScrape kept derived metric %s", dropped)
		}
	}
	for _, kept := range []string{"edfd_cache_hits", "edfd_propose_ns_count", `edfd_propose_ns_bucket{le="1024"}`} {
		if !got[kept] {
			t.Errorf("parseScrape dropped summable metric %s", kept)
		}
	}
	if types["edfd_propose_ns"] != obs.Histogram {
		t.Errorf("histogram type lost: %v", types["edfd_propose_ns"])
	}
	if fam, typ := familyOf("edfd_propose_ns_bucket", types); fam != "edfd_propose_ns" || typ != obs.Histogram {
		t.Errorf("familyOf(bucket) = %s/%s", fam, typ)
	}
	if fam, typ := familyOf("edfd_cache_hits", types); fam != "edfd_cache_hits" || typ != obs.Counter {
		t.Errorf("familyOf(counter) = %s/%s", fam, typ)
	}
}

// TestWriteFleetQuantiles rebuilds fleet p50/p99 from summed cumulative
// buckets — the two-replica sum below has 90 samples <= 1024 ns and 10
// more <= 1048576 ns.
func TestWriteFleetQuantiles(t *testing.T) {
	var sb strings.Builder
	writeFleetQuantiles(obs.NewExpositionWriter(&sb), []fleetBucket{
		{le: 1024, cum: 90},
		{le: 1048576, cum: 100},
	})
	out := sb.String()
	if !strings.Contains(out, "edfd_propose_ns_p50 1024\n") {
		t.Errorf("fleet p50 wrong:\n%s", out)
	}
	if !strings.Contains(out, "edfd_propose_ns_p99 1048576\n") {
		t.Errorf("fleet p99 wrong:\n%s", out)
	}

	// No buckets (older replicas): no quantile lines at all.
	sb.Reset()
	writeFleetQuantiles(obs.NewExpositionWriter(&sb), nil)
	if sb.Len() != 0 {
		t.Errorf("quantiles emitted without buckets:\n%s", sb.String())
	}

	// Zero samples: quantiles pin to zero rather than inventing latency.
	sb.Reset()
	writeFleetQuantiles(obs.NewExpositionWriter(&sb), []fleetBucket{{le: 1024, cum: 0}})
	if !strings.Contains(sb.String(), "edfd_propose_ns_p50 0\n") {
		t.Errorf("zero-sample p50 wrong:\n%s", sb.String())
	}
}
