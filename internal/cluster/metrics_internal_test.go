package cluster

import (
	"strings"
	"testing"
)

// TestParseMetricsDropsDerived asserts quantile and ratio lines are
// dropped at scrape time — they are recomputed from summable parts.
func TestParseMetricsDropsDerived(t *testing.T) {
	page := strings.NewReader(strings.Join([]string{
		"edfd_cache_hits 5",
		"edfd_cache_hit_rate 0.5000",
		"edfd_propose_ns_p50 1024",
		"edfd_propose_ns_p99 8192",
		"edfd_propose_ns_count 7",
		"edfd_propose_ns_bucket_le_1024 6",
	}, "\n"))
	vals := parseMetrics(page)
	for _, dropped := range []string{"edfd_cache_hit_rate", "edfd_propose_ns_p50", "edfd_propose_ns_p99"} {
		if _, ok := vals[dropped]; ok {
			t.Errorf("parseMetrics kept derived metric %s", dropped)
		}
	}
	for _, kept := range []string{"edfd_cache_hits", "edfd_propose_ns_count", "edfd_propose_ns_bucket_le_1024"} {
		if _, ok := vals[kept]; !ok {
			t.Errorf("parseMetrics dropped summable metric %s", kept)
		}
	}
}

// TestWriteFleetQuantiles rebuilds fleet p50/p99 from summed cumulative
// buckets — the two-replica sum below has 90 samples <= 1024 ns and 10
// more <= 1048576 ns.
func TestWriteFleetQuantiles(t *testing.T) {
	sums := map[string]float64{
		"edfd_propose_ns_bucket_le_1024":    90,
		"edfd_propose_ns_bucket_le_1048576": 100,
		"edfd_propose_ns_count":             100,
	}
	var sb strings.Builder
	writeFleetQuantiles(&sb, sums)
	out := sb.String()
	if !strings.Contains(out, "edfd_propose_ns_p50 1024\n") {
		t.Errorf("fleet p50 wrong:\n%s", out)
	}
	if !strings.Contains(out, "edfd_propose_ns_p99 1048576\n") {
		t.Errorf("fleet p99 wrong:\n%s", out)
	}

	// No buckets (older replicas): no quantile lines at all.
	sb.Reset()
	writeFleetQuantiles(&sb, map[string]float64{"edfd_cache_hits": 3})
	if sb.Len() != 0 {
		t.Errorf("quantiles emitted without buckets:\n%s", sb.String())
	}

	// Zero samples: quantiles pin to zero rather than inventing latency.
	sb.Reset()
	writeFleetQuantiles(&sb, map[string]float64{"edfd_propose_ns_bucket_le_1024": 0})
	if !strings.Contains(sb.String(), "edfd_propose_ns_p50 0\n") {
		t.Errorf("zero-sample p50 wrong:\n%s", sb.String())
	}
}
