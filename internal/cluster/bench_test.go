package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	edf "repro"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/client"
)

// benchTarget boots the topology under test: n replicas served either
// directly (n must be 1) or through an in-process proxy.
func benchTarget(b *testing.B, n int, proxied bool) (string, *cluster.Spawner) {
	b.Helper()
	sp, err := cluster.Spawn(n, service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sp.Close)
	if !proxied {
		return sp.URLs()[0], sp
	}
	p, err := cluster.New(cluster.Config{Replicas: sp.URLs()})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(p.Handler())
	b.Cleanup(hs.Close)
	return hs.URL, sp
}

// BenchmarkClusterAnalyze compares single-process edfd against a
// 2-replica cluster behind edfproxy under parallel load, mirroring
// BenchmarkServiceAnalyze's modes: "hit" hammers one hot workload (the
// ring pins it to one replica, whose cache answers), "miss" perturbs the
// workload every request (unique fingerprints spread over the ring and
// every replica's engine runs). Custom metrics: aggregate req/s,
// fleet-wide cache hit_rate, and — through the proxy — owner_hit_share,
// the fraction of all cache hits concentrated on the hottest replica
// (1.0 means perfect affinity).
func BenchmarkClusterAnalyze(b *testing.B) {
	base := genSets(b, 1, 99)[0]
	ctx := context.Background()
	for _, topo := range []struct {
		name     string
		replicas int
		proxied  bool
	}{
		{"direct-1", 1, false},
		{"proxy-2", 2, true},
	} {
		for _, mode := range []string{"hit", "miss"} {
			b.Run(topo.name+"/"+mode, func(b *testing.B) {
				target, sp := benchTarget(b, topo.replicas, topo.proxied)
				var ctr atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					c := client.New(target, nil)
					for pb.Next() {
						ts := base
						if mode == "miss" {
							// A never-repeating perturbation: every request
							// carries a fresh fingerprint.
							ts = base.Clone()
							ts[0].Period += ctr.Add(1)
						}
						if _, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(ts)}); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				var hits, misses, maxHits uint64
				for _, rep := range sp.Replicas {
					cs := rep.Server().CacheStats()
					hits += cs.Hits
					misses += cs.Misses
					maxHits = max(maxHits, cs.Hits)
				}
				if total := hits + misses; total > 0 {
					b.ReportMetric(float64(hits)/float64(total), "hit_rate")
				}
				if topo.proxied && hits > 0 {
					b.ReportMetric(float64(maxHits)/float64(hits), "owner_hit_share")
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

// BenchmarkClusterBatch measures a warm 32-set batch — through the proxy
// this exercises the full split / concurrent sub-batch / deterministic
// re-merge path with every job answered from replica caches, so the
// numbers isolate the routing overhead rather than analysis cost.
func BenchmarkClusterBatch(b *testing.B) {
	req := service.BatchRequest{Analyzers: []string{"cascade"}}
	for i, ts := range genSets(b, 32, 77) {
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
	}
	ctx := context.Background()
	for _, topo := range []struct {
		name     string
		replicas int
		proxied  bool
	}{
		{"direct-1", 1, false},
		{"proxy-2", 2, true},
	} {
		b.Run(topo.name, func(b *testing.B) {
			target, _ := benchTarget(b, topo.replicas, topo.proxied)
			c := client.New(target, nil)
			if _, _, err := c.Batch(ctx, req); err != nil { // warm the caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for b.Loop() {
				resp, _, err := c.Batch(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Results) != len(req.Sets) {
					b.Fatalf("got %d results, want %d", len(resp.Results), len(req.Sets))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(req.Sets))/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
