package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/service"
	"repro/internal/store"
)

// Replica is one in-process edfd instance under a Spawner.
type Replica struct {
	// URL is the replica's base URL ("http://127.0.0.1:<port>").
	URL string
	srv *service.Server
	hs  *http.Server
	ln  net.Listener
	st  store.Store

	mu   sync.Mutex
	dead bool
	done chan struct{}
}

// Server exposes the replica's service for white-box assertions (cache
// stats, metrics) in tests and benchmarks.
func (r *Replica) Server() *service.Server { return r.srv }

// Kill stops the replica abruptly: the listener and every open
// connection close immediately, so in-flight and future requests see
// transport errors — exactly what a crashed process looks like to the
// proxy. Killing twice is a no-op.
func (r *Replica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead {
		return
	}
	r.dead = true
	_ = r.hs.Close()
	r.srv.Close()
	<-r.done
	if r.st != nil {
		_ = r.st.Close()
	}
}

// Spawner boots real edfd replicas in-process on ephemeral 127.0.0.1
// ports — real TCP, real HTTP, no exec — so cluster tests and benchmarks
// exercise the same wire path as production without process management.
type Spawner struct {
	// Replicas are the running instances, in spawn order.
	Replicas []*Replica
}

// Spawn boots n replicas, each its own service.Server built from cfg.
func Spawn(n int, cfg service.Config) (*Spawner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: spawn needs n > 0, got %d", n)
	}
	s := &Spawner{}
	for i := 0; i < n; i++ {
		rep, err := spawnOne(cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		s.Replicas = append(s.Replicas, rep)
	}
	return s, nil
}

func spawnOne(cfg service.Config) (*Replica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := service.New(cfg)
	rep := &Replica{
		URL:  "http://" + ln.Addr().String(),
		srv:  srv,
		hs:   &http.Server{Handler: srv.Handler()},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(rep.done)
		// Serve returns ErrServerClosed (or a listener error) on Kill.
		_ = rep.hs.Serve(ln)
	}()
	return rep, nil
}

// SpawnShared boots n replicas over one shared durable-store directory,
// each journaling to its own per-node segment (wal-edfd-<i>.log) — the
// deployment layout behind cluster session takeover, where a surviving
// replica rehydrates a dead owner's sessions from the shared directory.
func SpawnShared(n int, cfg service.Config, dir string) (*Spawner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: spawn needs n > 0, got %d", n)
	}
	s := &Spawner{}
	for i := 0; i < n; i++ {
		st, err := store.Open(dir, fmt.Sprintf("edfd-%d", i), store.Options{})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("replica %d store: %w", i, err)
		}
		c := cfg
		c.Store = st
		rep, err := spawnOne(c)
		if err != nil {
			_ = st.Close()
			s.Close()
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		rep.st = st
		s.Replicas = append(s.Replicas, rep)
	}
	return s, nil
}

// URLs returns every replica's base URL in spawn order, dead ones
// included (the proxy is configured with the full set and discovers
// deaths itself).
func (s *Spawner) URLs() []string {
	out := make([]string, len(s.Replicas))
	for i, r := range s.Replicas {
		out[i] = r.URL
	}
	return out
}

// Close kills every replica still running.
func (s *Spawner) Close() {
	for _, r := range s.Replicas {
		r.Kill()
	}
}
