package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	edf "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

// spanNames collects a trace's span names for containment checks.
func spanNames(tr obs.Trace) map[string]bool {
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// hasReplicaSpan reports whether any span is labeled with a replica —
// the mark of a merged fleet trace.
func hasReplicaSpan(tr obs.Trace) bool {
	for _, sp := range tr.Spans {
		if sp.Replica != "" {
			return true
		}
	}
	return false
}

// TestProxyTraceRoundTrip pins the cross-layer trace contract: a trace
// ID minted at the proxy propagates to the replica, and resolving it at
// the proxy yields the merged view — proxy routing spans and the
// replica's own spans, labeled with their origin — for analyze, batch
// and session propose alike.
func TestProxyTraceRoundTrip(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	wl := edf.SporadicWorkload(edf.TaskSet{{Name: "a", WCET: 2, Deadline: 8, Period: 10}})

	// Analyze: the proxy's forward span plus the replica's cache+analyze.
	_, rt, err := tc.c.AnalyzeRouted(ctx, service.AnalyzeRequest{Name: "traced", Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TraceID == "" {
		t.Fatal("proxied analyze carried no trace id")
	}
	tr, err := tc.c.Trace(ctx, rt.TraceID)
	if err != nil {
		t.Fatalf("resolving analyze trace: %v", err)
	}
	names := spanNames(tr)
	for _, want := range []string{"forward", "cache", "analyze"} {
		if !names[want] {
			t.Fatalf("merged analyze trace lacks %q span: %v", want, tr.Spans)
		}
	}
	if !hasReplicaSpan(tr) {
		t.Fatalf("analyze trace has no replica-labeled span: %v", tr.Spans)
	}

	// Batch: the replicas' batch spans, plus — whenever the sets hashed
	// onto more than one replica — the proxy's per-sub-batch spans. A
	// single-owner batch takes the forward fast path instead; which case
	// ran is visible in Route.Replica (comma-joined when split).
	var breq service.BatchRequest
	breq.Analyzers = []string{"cascade"}
	for i, ts := range genSets(t, 16, 77) {
		breq.Sets = append(breq.Sets, service.WorkloadSet{
			Name: "set-" + string(rune('a'+i)), Workload: edf.SporadicWorkload(ts),
		})
	}
	_, brt, err := tc.c.BatchRouted(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	btr, err := tc.c.Trace(ctx, brt.TraceID)
	if err != nil {
		t.Fatalf("resolving batch trace: %v", err)
	}
	bnames := spanNames(btr)
	if !bnames["batch"] {
		t.Fatalf("merged batch trace lacks the replica batch span: %v", btr.Spans)
	}
	proxySpan := "forward"
	if strings.Contains(brt.Replica, ",") {
		proxySpan = "sub-batch"
	}
	if !bnames[proxySpan] {
		t.Fatalf("batch served by %q but trace lacks %q span: %v", brt.Replica, proxySpan, btr.Spans)
	}

	// Session propose: the proxy's route span plus the replica's propose
	// span, under the session-tagged trace.
	h, _, err := tc.c.OpenSession(ctx, service.SessionRequest{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	preq := service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "p", WCET: 1, Deadline: 50, Period: 100}),
	}
	resp, err := postForTrace(tc, "/v1/sessions/"+h.ID+"/propose", preq)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := tc.c.Trace(ctx, resp)
	if err != nil {
		t.Fatalf("resolving propose trace: %v", err)
	}
	if ptr.Session != h.ID {
		t.Fatalf("propose trace tagged with session %q, want %q", ptr.Session, h.ID)
	}
	pnames := spanNames(ptr)
	if !pnames["route"] || !pnames["propose"] {
		t.Fatalf("merged propose trace lacks route/propose spans: %v", ptr.Spans)
	}
	if !hasReplicaSpan(ptr) {
		t.Fatalf("propose trace has no replica-labeled span: %v", ptr.Spans)
	}
}

// postForTrace posts a JSON request through the proxy and returns the
// X-Edf-Trace response header (the typed client's session methods do
// not surface routing metadata).
func postForTrace(tc *testCluster, path string, in any) (string, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return "", err
	}
	resp, err := tc.hs.Client().Post(tc.hs.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
	}
	return resp.Header.Get(obs.TraceHeader), nil
}

// TestProxyFleetFeedContinuity subscribes to the fleet feed, then kills
// a replica mid-stream: events already relayed stay delivered, and the
// surviving replica's events keep flowing — with their replica label —
// through the same subscription.
func TestProxyFleetFeedContinuity(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Distinct seed workloads: session creation routes by the seed's
	// fingerprint, so identical seeds would pile onto one replica.
	seeds := genSets(t, 24, 59)

	ch, err := tc.c.FleetEvents(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The proxy's per-replica relays connect asynchronously after the
	// subscription returns, so a session opened immediately can slip by
	// unobserved. Open sessions until one's open event arrives — from
	// then on the relays are live — and keep opening until both replicas
	// own at least one observed session.
	owners := map[string]string{} // session -> replica label
	deadline := time.After(15 * time.Second)
	sessions := map[string]*client.Session{}
	distinct := map[string]bool{}
	for len(distinct) < 2 {
		if len(sessions) >= len(seeds) {
			t.Fatalf("all %d distinct seeds routed to one replica: %v", len(seeds), distinct)
		}
		h, _, err := tc.c.OpenSession(ctx, service.SessionRequest{
			Workload: edf.SporadicWorkload(seeds[len(sessions)]),
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[h.ID] = h
	drain:
		for {
			select {
			case ev := <-ch:
				if ev.Type == obs.EventOpen && sessions[ev.Session] != nil {
					if ev.Replica == "" {
						t.Fatalf("fleet event missing replica label: %+v", ev)
					}
					owners[ev.Session] = ev.Replica
					distinct[ev.Replica] = true
				}
			case <-time.After(300 * time.Millisecond):
				break drain
			case <-deadline:
				t.Fatalf("fleet feed never observed sessions on 2 replicas: %v", owners)
			}
		}
	}

	// Pick a session per replica, kill one owner.
	var victimSession, survivorSession string
	for id, rep := range owners {
		if victimSession == "" {
			victimSession = id
		} else if rep != owners[victimSession] && survivorSession == "" {
			survivorSession = id
		}
	}
	tc.replicaByURL(t, owners[victimSession]).Kill()

	// The survivor's decisions must keep arriving on the same stream.
	h := sessions[survivorSession]
	const proposes = 5
	for i := range proposes {
		if _, err := h.Propose(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "c", WCET: 1, Deadline: int64(60 + i), Period: 1000}),
		}); err != nil {
			t.Fatalf("propose %d after kill: %v", i, err)
		}
	}
	got := 0
	for got < proposes {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("fleet feed closed after replica kill")
			}
			if ev.Session != survivorSession {
				continue
			}
			if ev.Type != obs.EventAdmit && ev.Type != obs.EventReject {
				continue
			}
			if ev.Replica != owners[survivorSession] {
				t.Fatalf("post-kill event labeled %q, want %q", ev.Replica, owners[survivorSession])
			}
			if ev.Trace == "" {
				t.Fatalf("post-kill decision missing trace: %+v", ev)
			}
			got++
		case <-time.After(10 * time.Second):
			t.Fatalf("fleet feed stalled after replica kill: %d/%d decisions", got, proposes)
		}
	}
}
