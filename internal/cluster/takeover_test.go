package cluster_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	edf "repro"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/client"
)

// startSharedCluster boots n replicas over one shared store directory
// behind a proxy — the takeover deployment.
func startSharedCluster(t testing.TB, n int) *testCluster {
	t.Helper()
	sp, err := cluster.SpawnShared(n, service.Config{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sp.Close)
	p, err := cluster.New(cluster.Config{Replicas: sp.URLs()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(p.Handler())
	t.Cleanup(hs.Close)
	return &testCluster{sp: sp, p: p, hs: hs, c: client.New(hs.URL, hs.Client())}
}

// TestSessionTakeover is the headline of the durable-state subsystem:
// with a shared store, killing a session's owner no longer 503s — the
// proxy reassigns the session to a surviving peer, which rehydrates the
// committed state from the shared directory and keeps deciding.
func TestSessionTakeover(t *testing.T) {
	tc := startSharedCluster(t, 2)
	ctx := context.Background()

	h, state, err := tc.c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 10, Deadline: 90, Period: 100}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if state.Committed != 1 {
		t.Fatalf("fresh session: %+v", state)
	}
	if resp, err := h.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "a", WCET: 5, Deadline: 40, Period: 50}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("propose: %+v, %v", resp, err)
	}
	if _, err := h.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Learn the sticky owner from the route metadata, then kill it.
	_, rt, err := h.StateRouted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Owner == "" || rt.TakenOver() {
		t.Fatalf("healthy route: %+v", rt)
	}
	owner := rt.Owner
	tc.replicaByURL(t, owner).Kill()

	// The next touch is served by the takeover peer, attributed as such,
	// with the committed admission state intact.
	resp, rt2, err := h.ProposeRouted(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "b", WCET: 1, Deadline: 200, Period: 200}),
	})
	if err != nil {
		t.Fatalf("propose after owner death: %v", err)
	}
	if !resp.Admitted || resp.Committed != 2 {
		t.Fatalf("post-takeover propose: %+v, want admitted with committed=2", resp)
	}
	if rt2.TakenOverFrom != owner {
		t.Fatalf("route %+v: TakenOverFrom = %q, want %q", rt2, rt2.TakenOverFrom, owner)
	}
	if rt2.Replica == owner || rt2.Owner == owner {
		t.Fatalf("route %+v still names the dead owner", rt2)
	}

	// The session now sticks to the new owner: no takeover attribution on
	// the next request, and commit lands normally.
	_, rt3, err := h.StateRouted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rt3.TakenOver() || rt3.Owner != rt2.Owner {
		t.Fatalf("post-takeover route not sticky: %+v vs %+v", rt3, rt2)
	}
	if cm, err := h.Commit(ctx); err != nil || cm.Committed != 3 {
		t.Fatalf("commit on new owner: %+v, %v", cm, err)
	}

	text := mustMetrics(t, tc.c)
	if !strings.Contains(text, "edfproxy_takeover_total 1") {
		t.Errorf("metrics missing takeover count:\n%s", grepLines(text, "takeover"))
	}
	if !strings.Contains(text, "edfproxy_session_owner_unavailable 0") {
		t.Errorf("orphan 503 counted despite successful takeover:\n%s", grepLines(text, "owner_unavailable"))
	}
}

// TestTakeoverDrainsManySessions kills an owner while several sessions
// are live and checks every session keeps answering through the proxy
// with no client-visible error — the edfsmoke drain scenario in-process.
func TestTakeoverDrainsManySessions(t *testing.T) {
	tc := startSharedCluster(t, 3)
	ctx := context.Background()

	const sessions = 12
	handles := make([]*client.Session, sessions)
	for i := range handles {
		h, _, err := tc.c.OpenSession(ctx, service.SessionRequest{
			Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 1, Deadline: 400, Period: 500}}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp, err := h.Propose(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "w", WCET: 2, Deadline: 300, Period: 300}),
		}); err != nil || !resp.Admitted {
			t.Fatalf("session %d propose: %+v, %v", i, resp, err)
		}
		if _, err := h.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	// Kill whichever replica owns session 0; its other sessions ride the
	// same takeover path, sessions of surviving owners are untouched.
	_, rt, err := handles[0].StateRouted(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tc.replicaByURL(t, rt.Owner).Kill()

	for i, h := range handles {
		resp, _, err := h.ProposeRouted(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "x", WCET: 1, Deadline: 250, Period: 250}),
		})
		if err != nil {
			t.Fatalf("session %d after owner death: %v", i, err)
		}
		if !resp.Admitted || resp.Committed != 2 {
			t.Fatalf("session %d post-kill propose: %+v", i, resp)
		}
	}
	text := mustMetrics(t, tc.c)
	if strings.Contains(text, "edfproxy_takeover_total 0") {
		t.Error("no takeovers recorded despite a dead owner")
	}
}

// grepLines filters a metrics page to lines mentioning a substring, for
// readable failure output.
func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
