package cluster

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// proxyMetrics holds the proxy's own routing and failover counters.
// Replica-side numbers are scraped live at render time, never stored.
type proxyMetrics struct {
	requests       atomic.Uint64 // requests entering the proxy
	analyzeRouted  atomic.Uint64 // /v1/analyze requests routed by fingerprint
	batchRequests  atomic.Uint64 // /v1/batch requests accepted
	batchSplits    atomic.Uint64 // per-replica sub-batches dispatched
	batchJobs      atomic.Uint64 // merged batch jobs returned to clients
	sessionCreates atomic.Uint64 // sessions opened through the proxy
	sessionRoutes  atomic.Uint64 // session requests routed to their owner
	sessionOrphans atomic.Uint64 // session requests whose owner was unavailable
	failovers      atomic.Uint64 // requests retried on the next ring node
	ejections      atomic.Uint64 // replicas removed from the ring
	readmissions   atomic.Uint64 // replicas re-added after recovering
	noReplica      atomic.Uint64 // requests failed because the ring was empty
	upstreamErrors atomic.Uint64 // replica requests that failed all attempts
}

// writeMetrics renders the aggregate metrics page: the proxy's own
// counters under edfproxy_, each replica counter summed across healthy
// replicas under edfd_ (the single-process scrape keeps working against
// the proxy), and the raw per-replica values with a {replica="..."}
// label so cache affinity stays observable per node.
func (p *Proxy) writeMetrics(w io.Writer, scrapes []replicaScrape) {
	healthy, total := p.replicaCounts()
	own := map[string]uint64{
		"requests_total":             p.m.requests.Load(),
		"analyze_routed_total":       p.m.analyzeRouted.Load(),
		"batch_requests_total":       p.m.batchRequests.Load(),
		"batch_splits_total":         p.m.batchSplits.Load(),
		"batch_jobs_total":           p.m.batchJobs.Load(),
		"session_creates_total":      p.m.sessionCreates.Load(),
		"session_routes_total":       p.m.sessionRoutes.Load(),
		"session_owner_unavailable":  p.m.sessionOrphans.Load(),
		"failovers_total":            p.m.failovers.Load(),
		"replica_ejections_total":    p.m.ejections.Load(),
		"replica_readmissions_total": p.m.readmissions.Load(),
		"no_replica_errors_total":    p.m.noReplica.Load(),
		"upstream_errors_total":      p.m.upstreamErrors.Load(),
		"replicas_healthy":           uint64(healthy),
		"replicas_configured":        uint64(total),
		"sessions_tracked":           uint64(p.ownedSessions()),
	}
	names := make([]string, 0, len(own))
	for name := range own {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "edfproxy_%s %d\n", name, own[name])
	}

	// Merge the replica pages: numeric counters sum across replicas.
	sums := map[string]float64{}
	for _, sc := range scrapes {
		for name, v := range sc.values {
			sums[name] += v
		}
	}
	names = names[:0]
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %s\n", name, formatMetric(sums[name]))
	}
	// Derived ratios cannot be summed; recompute from the summed parts.
	if hits, misses := sums["edfd_cache_hits"], sums["edfd_cache_misses"]; hits+misses > 0 {
		fmt.Fprintf(w, "edfd_cache_hit_rate %.4f\n", hits/(hits+misses))
	}
	// Quantiles cannot be summed either, but the cumulative latency
	// buckets can — the summed page is itself a fleet histogram, so the
	// fleet p50/p99 fall out of it.
	writeFleetQuantiles(w, sums)
	for _, sc := range scrapes {
		names = names[:0]
		for name := range sc.values {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%s{replica=%q} %s\n", name, sc.replica, formatMetric(sc.values[name]))
		}
	}
}

// proposeBucketPrefix matches edfd's cumulative propose-latency buckets;
// the suffix is the bucket's upper bound in nanoseconds.
const proposeBucketPrefix = "edfd_propose_ns_bucket_le_"

// writeFleetQuantiles re-derives edfd_propose_ns_p50/p99 from the summed
// cumulative buckets. Replica pages without buckets (an older edfd) just
// produce no fleet quantiles.
func writeFleetQuantiles(w io.Writer, sums map[string]float64) {
	type bucket struct {
		le  int64
		cum float64
	}
	var bs []bucket
	for name, v := range sums {
		if strings.HasPrefix(name, proposeBucketPrefix) {
			if le, err := strconv.ParseInt(name[len(proposeBucketPrefix):], 10, 64); err == nil {
				bs = append(bs, bucket{le: le, cum: v})
			}
		}
	}
	if len(bs) == 0 {
		return
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	count := bs[len(bs)-1].cum
	quantile := func(q float64) int64 {
		if count <= 0 {
			return 0
		}
		rank := q * count
		if rank < 1 {
			rank = 1
		}
		for _, b := range bs {
			if b.cum >= rank {
				return b.le
			}
		}
		return bs[len(bs)-1].le
	}
	fmt.Fprintf(w, "edfd_propose_ns_p50 %d\n", quantile(0.50))
	fmt.Fprintf(w, "edfd_propose_ns_p99 %d\n", quantile(0.99))
}

// formatMetric renders counters as integers and everything else with the
// shortest float form, matching edfd's own page.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// replicaScrape is one replica's parsed /metrics page.
type replicaScrape struct {
	replica string
	values  map[string]float64
}

// parseMetrics reads "name value" lines (edfd's format), keeping the
// numeric ones. Ratio and quantile lines (edfd_cache_hit_rate,
// edfd_propose_ns_p50/p99) are dropped — neither can be summed across
// replicas, the aggregate recomputes them from their summable parts.
func parseMetrics(r io.Reader) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, val, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok || strings.HasSuffix(name, "_rate") ||
			strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p99") {
			continue
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = v
		}
	}
	return out
}
