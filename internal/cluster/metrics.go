package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// proxyMetrics holds the proxy's own routing and failover counters.
// Replica-side numbers are scraped live at render time, never stored.
type proxyMetrics struct {
	requests         atomic.Uint64 // requests entering the proxy
	analyzeRouted    atomic.Uint64 // /v1/analyze requests routed by fingerprint
	partitionRouted  atomic.Uint64 // /v1/partition requests routed by fingerprint
	modelRejections  atomic.Uint64 // requests 400d for a model the fleet lacks
	batchRequests    atomic.Uint64 // /v1/batch requests accepted
	batchSplits      atomic.Uint64 // per-replica sub-batches dispatched
	batchJobs        atomic.Uint64 // merged batch jobs returned to clients
	sessionCreates   atomic.Uint64 // sessions opened through the proxy
	sessionRoutes    atomic.Uint64 // session requests routed to their owner
	sessionOrphans   atomic.Uint64 // session requests whose owner was unavailable
	takeovers        atomic.Uint64 // sessions reassigned to a takeover peer
	takeoverFailed   atomic.Uint64 // takeover attempts no peer could serve
	failovers        atomic.Uint64 // requests retried on the next ring node
	ejections        atomic.Uint64 // replicas removed from the ring
	readmissions     atomic.Uint64 // replicas re-added after recovering
	noReplica        atomic.Uint64 // requests failed because the ring was empty
	upstreamErrors   atomic.Uint64 // replica requests that failed all attempts
	eventsRelayed    atomic.Uint64 // feed events relayed from replica streams
	eventSubscribers atomic.Int64  // open fleet feed streams
}

// writeMetrics renders the aggregate page in Prometheus text exposition
// format: the proxy's own counters under edfproxy_, then each replica
// family with its fleet sum (unlabeled, so the single-process scrape
// keeps working against the proxy) followed by the raw per-replica
// samples under a {replica="..."} label — one contiguous block per
// family, as the format requires. Ratios and quantiles cannot be
// summed; they are recomputed from their summable parts.
func (p *Proxy) writeMetrics(w io.Writer, scrapes []replicaScrape) {
	healthy, total := p.replicaCounts()
	ew := obs.NewExpositionWriter(w)
	counter := func(name, help string, v uint64) {
		name = "edfproxy_" + name
		ew.Family(name, obs.Counter, help)
		ew.Sample(name, nil, float64(v))
	}
	gauge := func(name, help string, v float64) {
		name = "edfproxy_" + name
		ew.Family(name, obs.Gauge, help)
		ew.Sample(name, nil, v)
	}
	counter("requests_total", "Requests entering the proxy.", p.m.requests.Load())
	counter("analyze_routed_total", "Analyze requests routed by workload fingerprint.", p.m.analyzeRouted.Load())
	counter("partition_routed_total", "Partition requests routed by workload fingerprint.", p.m.partitionRouted.Load())
	counter("model_rejections_total", "Requests rejected for a workload model the fleet does not support.", p.m.modelRejections.Load())
	counter("batch_requests_total", "Batch requests accepted.", p.m.batchRequests.Load())
	counter("batch_splits_total", "Per-replica sub-batches dispatched.", p.m.batchSplits.Load())
	counter("batch_jobs_total", "Merged batch jobs returned to clients.", p.m.batchJobs.Load())
	counter("session_creates_total", "Sessions opened through the proxy.", p.m.sessionCreates.Load())
	counter("session_routes_total", "Session requests routed to their sticky owner.", p.m.sessionRoutes.Load())
	counter("session_owner_unavailable", "Session requests whose owner replica was down.", p.m.sessionOrphans.Load())
	counter("takeover_total", "Sessions reassigned to a takeover peer after their owner died.", p.m.takeovers.Load())
	counter("takeover_failed_total", "Takeover attempts no surviving peer could serve.", p.m.takeoverFailed.Load())
	counter("failovers_total", "Requests retried on the next ring node.", p.m.failovers.Load())
	counter("replica_ejections_total", "Replicas removed from the ring.", p.m.ejections.Load())
	counter("replica_readmissions_total", "Replicas re-added after recovering.", p.m.readmissions.Load())
	counter("no_replica_errors_total", "Requests failed because the ring was empty.", p.m.noReplica.Load())
	counter("upstream_errors_total", "Replica requests that failed every attempt.", p.m.upstreamErrors.Load())
	counter("events_relayed_total", "Feed events relayed from replica streams.", p.m.eventsRelayed.Load())
	gauge("event_subscribers", "Fleet feed streams currently open.", float64(p.m.eventSubscribers.Load()))
	gauge("replicas_healthy", "Replicas currently on the ring.", float64(healthy))
	gauge("replicas_configured", "Replicas configured at startup.", float64(total))
	gauge("sessions_tracked", "Session owners the proxy remembers.", float64(p.ownedSessions()))

	// Merge the replica pages. Families and samples keep the first
	// scrape's order (replica pages are identically structured), values
	// sum across replicas under the sample's full key — name plus labels —
	// so labeled series like histogram buckets merge per bucket.
	type aggEntry struct {
		sample obs.Sample // name + labels from the first scrape holding it
		key    string
		sum    float64
	}
	type familyBlock struct {
		name    string
		typ     obs.MetricType
		entries []*aggEntry
	}
	var fams []*familyBlock
	famIdx := map[string]*familyBlock{}
	entryIdx := map[string]*aggEntry{}
	perReplica := make([]map[string]float64, len(scrapes))
	for si, sc := range scrapes {
		perReplica[si] = make(map[string]float64, len(sc.samples))
		for _, s := range sc.samples {
			key := s.Key()
			perReplica[si][key] = s.Value
			e, ok := entryIdx[key]
			if !ok {
				famName, typ := familyOf(s.Name, sc.types)
				fb, exists := famIdx[famName]
				if !exists {
					fb = &familyBlock{name: famName, typ: typ}
					famIdx[famName] = fb
					fams = append(fams, fb)
				}
				e = &aggEntry{sample: s, key: key}
				fb.entries = append(fb.entries, e)
				entryIdx[key] = e
			}
			e.sum += s.Value
		}
	}
	for _, fb := range fams {
		ew.Family(fb.name, fb.typ, "Fleet sum; {replica} samples are per node.")
		for _, e := range fb.entries {
			ew.Sample(e.sample.Name, e.sample.Labels, e.sum)
			for si, sc := range scrapes {
				v, ok := perReplica[si][e.key]
				if !ok {
					continue
				}
				labels := make([]obs.Label, 0, len(e.sample.Labels)+1)
				labels = append(labels, e.sample.Labels...)
				labels = append(labels, obs.Label{Name: "replica", Value: sc.replica})
				ew.Sample(e.sample.Name, labels, v)
			}
		}
	}

	// Derived ratios cannot be summed; recompute from the summed parts.
	sumOf := func(key string) float64 {
		if e, ok := entryIdx[key]; ok {
			return e.sum
		}
		return 0
	}
	if hits, misses := sumOf("edfd_cache_hits"), sumOf("edfd_cache_misses"); hits+misses > 0 {
		ew.Family("edfd_cache_hit_rate", obs.Gauge, "Fleet cache hits over lookups.")
		ew.SampleString("edfd_cache_hit_rate", nil, fmt.Sprintf("%.4f", hits/(hits+misses)))
	}
	// Quantiles cannot be summed either, but the cumulative latency
	// buckets can — the summed page is itself a fleet histogram, so the
	// fleet p50/p99 fall out of it.
	var bs []fleetBucket
	if fb, ok := famIdx["edfd_propose_ns"]; ok {
		for _, e := range fb.entries {
			if e.sample.Name != "edfd_propose_ns_bucket" {
				continue
			}
			if le, err := strconv.ParseInt(e.sample.Label("le"), 10, 64); err == nil {
				bs = append(bs, fleetBucket{le: le, cum: e.sum})
			}
		}
	}
	writeFleetQuantiles(ew, bs)
}

// familyOf maps a sample name to its metric family: the name itself for
// scalar families, the declared histogram family for its _bucket, _sum
// and _count series.
func familyOf(name string, types map[string]obs.MetricType) (string, obs.MetricType) {
	if t, ok := types[name]; ok {
		return name, t
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, exists := types[base]; exists && t == obs.Histogram {
				return base, t
			}
		}
	}
	return name, obs.Untyped
}

// fleetBucket is one summed cumulative latency bucket.
type fleetBucket struct {
	le  int64
	cum float64
}

// writeFleetQuantiles re-derives edfd_propose_ns_p50/p99 from the summed
// cumulative buckets. Replica pages without buckets (an older edfd) just
// produce no fleet quantiles.
func writeFleetQuantiles(ew *obs.ExpositionWriter, bs []fleetBucket) {
	if len(bs) == 0 {
		return
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	count := bs[len(bs)-1].cum
	quantile := func(q float64) int64 {
		if count <= 0 {
			return 0
		}
		rank := q * count
		if rank < 1 {
			rank = 1
		}
		for _, b := range bs {
			if b.cum >= rank {
				return b.le
			}
		}
		return bs[len(bs)-1].le
	}
	ew.Family("edfd_propose_ns_p50", obs.Gauge, "Fleet median proposal latency, from summed buckets.")
	ew.Sample("edfd_propose_ns_p50", nil, float64(quantile(0.50)))
	ew.Family("edfd_propose_ns_p99", obs.Gauge, "Fleet 99th-percentile proposal latency, from summed buckets.")
	ew.Sample("edfd_propose_ns_p99", nil, float64(quantile(0.99)))
}

// replicaScrape is one replica's parsed /metrics page.
type replicaScrape struct {
	replica string
	samples []obs.Sample
	types   map[string]obs.MetricType
}

// parseScrape parses a replica exposition page, dropping the derived
// series (edfd_cache_hit_rate, edfd_propose_ns_p50/p99) — neither can be
// summed across replicas; the aggregate recomputes them from their
// summable parts.
func parseScrape(r io.Reader) ([]obs.Sample, map[string]obs.MetricType, error) {
	samples, types, err := obs.ParseExpositionTyped(r)
	if err != nil {
		return nil, nil, err
	}
	kept := samples[:0]
	for _, s := range samples {
		if derivedName(s.Name) {
			continue
		}
		kept = append(kept, s)
	}
	return kept, types, nil
}

// derivedName reports whether a series is derived from other series and
// therefore must not be summed.
func derivedName(name string) bool {
	return strings.HasSuffix(name, "_rate") ||
		strings.HasSuffix(name, "_p50") ||
		strings.HasSuffix(name, "_p99")
}
