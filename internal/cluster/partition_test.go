package cluster_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/workload"
)

func partReq(name string, tasks ...workload.PartitionedTask) service.PartitionRequest {
	return service.PartitionRequest{
		Name: name,
		Workload: service.PartitionedWorkload(
			[]workload.Processor{{Name: "p0"}, {Name: "p1", Speed: 2}}, tasks),
	}
}

func pTask(name string, c, d, t int64) workload.PartitionedTask {
	return workload.PartitionedTask{Task: model.Task{Name: name, WCET: c, Deadline: d, Period: t}}
}

// TestProxyPartitionRouting routes a placement through the proxy:
// fingerprint-sticky like analyze, per-bin cache warm on the repeat,
// and the proxy's own partition counter visible on /metrics.
func TestProxyPartitionRouting(t *testing.T) {
	tc := startCluster(t, 3, service.Config{})
	ctx := context.Background()
	req := partReq("cluster", pTask("a", 6, 10, 10), pTask("b", 6, 10, 10), pTask("c", 2, 10, 10))

	first, rt1, err := tc.c.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Feasible || len(first.Processors) != 2 {
		t.Fatalf("placement: %+v", first)
	}
	if rt1.Replica == "" || rt1.Attempts != 1 {
		t.Fatalf("route: %+v", rt1)
	}
	second, rt2, err := tc.c.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Replica != rt1.Replica {
		t.Errorf("repeat placement routed to %s, first went to %s", rt2.Replica, rt1.Replica)
	}
	if second.Stats.CacheHits == 0 {
		t.Errorf("repeat placement on the sticky replica hit no cache: %+v", second.Stats)
	}

	page, err := tc.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"edfproxy_partition_routed_total 2",
		"edfd_partition_requests_total 2",
		"edfd_partition_bin_cache_hits_total",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("fleet metrics lack %q", want)
		}
	}
}

// TestProxyPartitionFailover kills the sticky replica and expects the
// same batch-style failover semantics: the request succeeds on the next
// ring node with Attempts > 1.
func TestProxyPartitionFailover(t *testing.T) {
	tc := startCluster(t, 3, service.Config{})
	ctx := context.Background()
	req := partReq("failover", pTask("a", 6, 10, 10), pTask("b", 6, 10, 10))

	_, rt, err := tc.c.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	tc.replicaByURL(t, rt.Replica).Kill()
	resp, rt2, err := tc.c.Partition(ctx, req)
	if err != nil {
		t.Fatalf("partition after replica death: %v", err)
	}
	if !resp.Feasible {
		t.Fatalf("placement infeasible after failover: %+v", resp)
	}
	if rt2.Replica == rt.Replica || rt2.Attempts < 2 {
		t.Errorf("no failover: first %+v, second %+v", rt, rt2)
	}
}

// TestProxySchemaGate exercises GET /v1/schema through the proxy and
// the model gate built on it: supported models pass through, and the
// typed 400 for an unknown model is the proxy's own (no replica sees
// the request).
func TestProxySchemaGate(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()

	sr, err := tc.c.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.WireVersion != service.WireVersion {
		t.Errorf("wire version %q through the proxy", sr.WireVersion)
	}

	// A supported model passes the gate (and primes the schema cache).
	if _, _, err := tc.c.Partition(ctx, partReq("ok", pTask("a", 1, 10, 10))); err != nil {
		t.Fatal(err)
	}

	// An unknown model is rejected by the proxy with the typed error.
	raw := `{"model":"partitioned","processors":[{}],"tasks":[{"wcet":1,"deadline":2,"period":2}]}`
	bogus := strings.Replace(raw, "partitioned", "hyperperiodic", 1)
	resp, err := tc.hs.Client().Post(tc.hs.URL+"/v1/partition", "application/json", strings.NewReader(bogus))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// An unknown model already fails the request decode (the workload
	// parser rejects it), which is also a 400 — either way the client
	// must see bad_request, never a 5xx.
	if resp.StatusCode != 400 {
		t.Errorf("unknown model: status %d", resp.StatusCode)
	}

	// The typed client surface agrees.
	_, _, err = tc.c.Partition(ctx, service.PartitionRequest{
		Workload: service.SporadicWorkload(model.TaskSet{{WCET: 1, Deadline: 2, Period: 2}}),
	})
	var se *service.Error
	if !errors.As(err, &se) || se.Retryable {
		t.Errorf("sporadic on /v1/partition through proxy: %v", err)
	}
}
