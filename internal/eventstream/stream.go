package eventstream

import (
	"fmt"
	"math/big"

	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// Element is one event stream element (cycle z, offset a): events occur at
// a, a+z, a+2z, ... A zero cycle denotes a single event at the offset.
type Element struct {
	Cycle  int64 `json:"cycle"`  // 0 = one-shot
	Offset int64 `json:"offset"` // >= 0
}

// Validate reports the first structural problem of the element.
func (e Element) Validate() error {
	switch {
	case e.Cycle < 0:
		return fmt.Errorf("eventstream: cycle %d must be non-negative", e.Cycle)
	case e.Offset < 0:
		return fmt.Errorf("eventstream: offset %d must be non-negative", e.Offset)
	}
	return nil
}

// Stream is an event stream: a set of elements whose superposition bounds
// the event arrivals of one task.
type Stream []Element

// Validate reports the first structural problem of the stream.
func (s Stream) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("eventstream: empty stream")
	}
	for i, e := range s {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("element %d: %w", i, err)
		}
	}
	return nil
}

// Events returns the event bound function η(I): the maximal number of
// events within any interval of length I (I >= 0).
func (s Stream) Events(I int64) int64 {
	var n int64
	for _, e := range s {
		if I < e.Offset {
			continue
		}
		if e.Cycle == 0 {
			n++
			continue
		}
		n += (I-e.Offset)/e.Cycle + 1
	}
	return n
}

// Utilization returns the asymptotic event density Σ 1/cycle (one-shot
// elements contribute nothing) as an exact rational.
func (s Stream) Utilization() *big.Rat {
	u := new(big.Rat)
	for _, e := range s {
		if e.Cycle > 0 {
			u.Add(u, big.NewRat(1, e.Cycle))
		}
	}
	return u
}

// Periodic returns the stream of a strictly periodic activation.
func Periodic(period int64) Stream { return Stream{{Cycle: period}} }

// Burst returns the stream of a periodically repeating burst: count events
// spaced by spacing time units, the whole pattern repeating every period.
// This is the bursty shape of Figure 4(b) of the paper.
func Burst(period int64, count int, spacing int64) Stream {
	s := make(Stream, 0, count)
	for i := range count {
		s = append(s, Element{Cycle: period, Offset: int64(i) * spacing})
	}
	return s
}

// Sporadic returns the stream equivalent of a sporadic task with the given
// minimal inter-arrival distance.
func Sporadic(t model.Task) Stream { return Periodic(t.Period) }

// Task is an event-driven task: every event of the stream releases a job
// with the given execution demand and relative deadline.
type Task struct {
	Name     string `json:"name,omitempty"`
	Stream   Stream `json:"stream"`
	WCET     int64  `json:"wcet"`
	Deadline int64  `json:"deadline"`
}

// Validate reports the first structural problem of the task.
func (t Task) Validate() error {
	switch {
	case t.WCET <= 0:
		return fmt.Errorf("eventstream: task %q: WCET %d must be positive", t.Name, t.WCET)
	case t.Deadline <= 0:
		return fmt.Errorf("eventstream: task %q: deadline %d must be positive", t.Name, t.Deadline)
	}
	if err := t.Stream.Validate(); err != nil {
		return fmt.Errorf("eventstream: task %q: %w", t.Name, err)
	}
	return nil
}

// Dbf returns the exact demand bound of the task: WCET times the events
// whose release and deadline fit into I.
func (t Task) Dbf(I int64) int64 {
	if I < t.Deadline {
		return 0
	}
	return t.Stream.Events(I-t.Deadline) * t.WCET
}

// elemSource adapts one stream element to the demand.Source interface.
type elemSource struct {
	c     int64 // WCET per event
	first int64 // first absolute deadline: offset + relative deadline
	cycle int64 // 0 = one-shot
}

var _ demand.Source = elemSource{}

func (s elemSource) WCET() int64 { return s.c }

func (s elemSource) UtilRat() (num, den int64) {
	if s.cycle == 0 {
		return 0, 1
	}
	return s.c, s.cycle
}

// UniformShape lets the demand walks run event-stream elements on the
// flat uniform fast path; one-shot elements (cycle 0) do not qualify.
func (s elemSource) UniformShape() (wcet, sep int64, ok bool) {
	return s.c, s.cycle, s.cycle != 0
}

func (s elemSource) JobDeadline(k int64) int64 {
	if k < 1 {
		return 0
	}
	if s.cycle == 0 {
		if k == 1 {
			return s.first
		}
		return demand.MaxInterval
	}
	span, ok := numeric.MulChecked(k-1, s.cycle)
	if !ok {
		return demand.MaxInterval
	}
	d, ok := numeric.AddChecked(s.first, span)
	if !ok {
		return demand.MaxInterval
	}
	return d
}

func (s elemSource) NextDeadline(after int64) int64 {
	if after < s.first {
		return s.first
	}
	if s.cycle == 0 {
		return demand.MaxInterval
	}
	return s.JobDeadline((after-s.first)/s.cycle + 2)
}

func (s elemSource) JobsUpTo(I int64) int64 {
	if I < s.first {
		return 0
	}
	if s.cycle == 0 {
		return 1
	}
	return (I-s.first)/s.cycle + 1
}

func (s elemSource) DemandUpTo(I int64) int64 { return s.JobsUpTo(I) * s.c }

func (s elemSource) ApproxError(I int64) (num, den int64) {
	if I < s.first || s.cycle == 0 {
		return 0, 1
	}
	r := (I - s.first) % s.cycle
	n, ok := numeric.MulChecked(s.c, r)
	if !ok {
		return demand.MaxInterval, s.cycle
	}
	return n, s.cycle
}

// Sources decomposes the event-driven tasks into demand sources, one per
// stream element, ready for the feasibility tests of internal/core.
func Sources(tasks []Task) []demand.Source {
	var srcs []demand.Source
	for _, t := range tasks {
		for _, e := range t.Stream {
			srcs = append(srcs, elemSource{c: t.WCET, first: e.Offset + t.Deadline, cycle: e.Cycle})
		}
	}
	return srcs
}
