package eventstream

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// taskFile is the on-disk JSON representation of a named event-driven task
// set.
type taskFile struct {
	Name  string `json:"name,omitempty"`
	Tasks []Task `json:"tasks"`
}

// WriteJSON writes the event-driven task set as indented JSON.
func WriteJSON(w io.Writer, name string, tasks []Task) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(taskFile{Name: name, Tasks: tasks}); err != nil {
		return fmt.Errorf("eventstream: encoding task set: %w", err)
	}
	return nil
}

// ReadJSON parses an event-driven task set from r, accepting the object
// form {"name":..., "tasks":[...]} or a bare array. The set is validated.
func ReadJSON(r io.Reader) ([]Task, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("eventstream: reading task set: %w", err)
	}
	var tf taskFile
	if err := json.Unmarshal(data, &tf); err != nil {
		var bare []Task
		if err2 := json.Unmarshal(data, &bare); err2 != nil {
			return nil, "", fmt.Errorf("eventstream: parsing task set: %w", err)
		}
		tf = taskFile{Tasks: bare}
	}
	if len(tf.Tasks) == 0 {
		return nil, "", fmt.Errorf("eventstream: empty task set")
	}
	for i, t := range tf.Tasks {
		if err := t.Validate(); err != nil {
			return nil, "", fmt.Errorf("task %d: %w", i, err)
		}
	}
	return tf.Tasks, tf.Name, nil
}

// LoadFile reads an event-driven task set from a JSON file.
func LoadFile(path string) ([]Task, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("eventstream: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveFile writes the event-driven task set to a JSON file.
func SaveFile(path, name string, tasks []Task) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eventstream: %w", err)
	}
	defer f.Close()
	return WriteJSON(f, name, tasks)
}
