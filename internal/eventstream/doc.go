// Package eventstream implements the event stream model of Gresser (the
// paper's reference [11]), the more expressive task activation model the
// paper names as the natural extension target of its tests (Section 2:
// "Especially the extension for the event stream model is easy by
// following the definitions proposed in [1]").
//
// An event stream is a set of elements (cycle, offset); element (z, a)
// contributes events at times a, a+z, a+2z, ... (a single event when z is
// zero). The event bound function η(I) counts the maximal number of events
// in any interval of length I. A bursty activation pattern — the case
// Section 3.6 of the paper argues real-time calculus approximates poorly —
// is simply several elements sharing a long cycle with staggered offsets.
//
// Each element of a stream becomes one demand.Source ("each element of the
// burst has to be handled as a separate element of the event stream"), so
// the iterative feasibility tests of internal/core run on event streams
// without modification.
package eventstream
