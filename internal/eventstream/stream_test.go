package eventstream

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
)

func TestElementValidate(t *testing.T) {
	if err := (Element{Cycle: 10, Offset: 0}).Validate(); err != nil {
		t.Errorf("valid element rejected: %v", err)
	}
	if err := (Element{Cycle: -1}).Validate(); err == nil {
		t.Error("negative cycle accepted")
	}
	if err := (Element{Offset: -1}).Validate(); err == nil {
		t.Error("negative offset accepted")
	}
	if err := (Stream{}).Validate(); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestEventsPeriodic(t *testing.T) {
	s := Periodic(10)
	cases := []struct{ I, want int64 }{{0, 1}, {9, 1}, {10, 2}, {25, 3}}
	for _, c := range cases {
		if got := s.Events(c.I); got != c.want {
			t.Errorf("eta(%d) = %d, want %d", c.I, got, c.want)
		}
	}
}

func TestEventsBurst(t *testing.T) {
	// 3 events spaced 5, repeating every 100.
	s := Burst(100, 3, 5)
	cases := []struct{ I, want int64 }{
		{0, 1}, {4, 1}, {5, 2}, {10, 3}, {99, 3}, {100, 4}, {110, 6}, {200, 7},
	}
	for _, c := range cases {
		if got := s.Events(c.I); got != c.want {
			t.Errorf("eta(%d) = %d, want %d", c.I, got, c.want)
		}
	}
}

func TestEventsOneShot(t *testing.T) {
	s := Stream{{Cycle: 0, Offset: 5}}
	if got := s.Events(4); got != 0 {
		t.Errorf("eta(4) = %d, want 0", got)
	}
	if got := s.Events(5); got != 1 {
		t.Errorf("eta(5) = %d, want 1", got)
	}
	if got := s.Events(1000); got != 1 {
		t.Errorf("eta(1000) = %d, want 1", got)
	}
}

func TestTaskDbfMatchesSources(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for range 500 {
		task := Task{
			Stream:   Burst(50+rng.Int63n(200), 1+rng.Intn(4), 1+rng.Int63n(20)),
			WCET:     1 + rng.Int63n(9),
			Deadline: 1 + rng.Int63n(60),
		}
		srcs := Sources([]Task{task})
		for I := int64(0); I < 600; I += 1 + rng.Int63n(7) {
			if got, want := demand.Dbf(srcs, I), task.Dbf(I); got != want {
				t.Fatalf("dbf(%d): sources %d, task %d (%+v)", I, got, want, task)
			}
		}
	}
}

// TestSporadicEquivalence: a periodic stream task must behave identically
// to the sporadic task with the same parameters under every test.
func TestSporadicEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for range 1000 {
		T := int64(2 + rng.Intn(20))
		C := 1 + rng.Int63n(T)
		D := C + rng.Int63n(T-C+1)
		ts := model.TaskSet{{WCET: C, Deadline: D, Period: T},
			{WCET: 1, Deadline: 3, Period: 4}}
		if ts.Utilization().Cmp(ratOneForTest) >= 0 {
			continue
		}
		evTasks := []Task{
			{Stream: Periodic(T), WCET: C, Deadline: D},
			{Stream: Periodic(4), WCET: 1, Deadline: 3},
		}
		want := core.ProcessorDemand(ts, core.Options{}).Verdict
		if got := core.ProcessorDemandSources(Sources(evTasks), core.Options{}).Verdict; got != want {
			t.Fatalf("pd: stream %v, sporadic %v for %v", got, want, ts)
		}
		if got := core.AllApproxSources(Sources(evTasks), 0, core.Options{}).Verdict; got != want {
			t.Fatalf("allapprox: stream %v, want %v for %v", got, want, ts)
		}
		if got := core.DynamicErrorSources(Sources(evTasks), 0, core.Options{}).Verdict; got != want {
			t.Fatalf("dynamic: stream %v, want %v for %v", got, want, ts)
		}
	}
}

// TestBurstExactAgainstBrute cross-checks the iterative tests on bursty
// streams against a brute-force scan of the demand bound function.
func TestBurstExactAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	checked := 0
	for range 800 {
		tasks := []Task{
			{Stream: Burst(40+rng.Int63n(60), 2+rng.Intn(3), 2+rng.Int63n(5)),
				WCET: 1 + rng.Int63n(4), Deadline: 3 + rng.Int63n(20)},
			{Stream: Periodic(5 + rng.Int63n(10)), WCET: 1 + rng.Int63n(2),
				Deadline: 2 + rng.Int63n(8)},
			{Stream: Stream{{Cycle: 0, Offset: rng.Int63n(30)}},
				WCET: 1 + rng.Int63n(5), Deadline: 2 + rng.Int63n(10)},
		}
		srcs := Sources(tasks)
		pd := core.ProcessorDemandSources(srcs, core.Options{})
		if pd.Verdict == core.Undecided {
			continue
		}
		checked++
		// Brute force over the same bound.
		feasible := true
		for I := int64(1); I < pd.Bound; I++ {
			if demand.Dbf(srcs, I) > I {
				feasible = false
				break
			}
		}
		want := core.Feasible
		if !feasible {
			want = core.Infeasible
		}
		if pd.Verdict != want {
			t.Fatalf("pd %v, brute %v for %+v", pd.Verdict, want, tasks)
		}
		if got := core.AllApproxSources(srcs, 0, core.Options{}).Verdict; got != want {
			t.Fatalf("allapprox %v, brute %v for %+v", got, want, tasks)
		}
		if got := core.DynamicErrorSources(srcs, 0, core.Options{}).Verdict; got != want {
			t.Fatalf("dynamic %v, brute %v for %+v", got, want, tasks)
		}
		if got := core.SuperPosSources(srcs, 3, core.Options{}); got.Verdict == core.Feasible && want == core.Infeasible {
			t.Fatalf("superpos accepted infeasible stream set %+v", tasks)
		}
	}
	if checked < 400 {
		t.Fatalf("only %d stream sets checked", checked)
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{Stream: Periodic(10), WCET: 1, Deadline: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	for _, bad := range []Task{
		{Stream: Periodic(10), WCET: 0, Deadline: 5},
		{Stream: Periodic(10), WCET: 1, Deadline: 0},
		{Stream: Stream{}, WCET: 1, Deadline: 5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid task accepted: %+v", bad)
		}
	}
}

// ratOneForTest avoids importing math/big in multiple spots.
var ratOneForTest = model.TaskSet{{WCET: 1, Deadline: 1, Period: 1}}.Utilization()
