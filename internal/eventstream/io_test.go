package eventstream

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tasks := []Task{
		{Name: "periodic", Stream: Periodic(100), WCET: 10, Deadline: 50},
		{Name: "burst", Stream: Burst(1000, 3, 7), WCET: 5, Deadline: 30},
		{Name: "oneshot", Stream: Stream{{Cycle: 0, Offset: 12}}, WCET: 2, Deadline: 9},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "gateway", tasks); err != nil {
		t.Fatal(err)
	}
	got, name, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "gateway" || len(got) != 3 {
		t.Fatalf("name %q tasks %d", name, len(got))
	}
	for i := range tasks {
		if got[i].Name != tasks[i].Name || got[i].WCET != tasks[i].WCET ||
			got[i].Deadline != tasks[i].Deadline || len(got[i].Stream) != len(tasks[i].Stream) {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, got[i], tasks[i])
		}
		for j := range tasks[i].Stream {
			if got[i].Stream[j] != tasks[i].Stream[j] {
				t.Fatalf("element %d/%d mismatch", i, j)
			}
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	for _, in := range []string{
		`garbage`,
		`{"tasks":[]}`,
		`{"tasks":[{"wcet":0,"deadline":5,"stream":[{"cycle":10}]}]}`,
		`{"tasks":[{"wcet":1,"deadline":5,"stream":[]}]}`,
		`{"tasks":[{"wcet":1,"deadline":5,"stream":[{"cycle":-1}]}]}`,
	} {
		if _, _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.json")
	tasks := []Task{{Stream: Periodic(10), WCET: 1, Deadline: 5}}
	if err := SaveFile(path, "f", tasks); err != nil {
		t.Fatal(err)
	}
	got, name, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "f" || len(got) != 1 {
		t.Fatalf("got %v name %q", got, name)
	}
}
