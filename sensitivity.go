package edf

import "repro/internal/sensitivity"

// FeasibilityOracle decides feasibility for the sensitivity searches;
// nil selects the all-approximated test.
type FeasibilityOracle = sensitivity.Oracle

// MaxWCET returns the largest WCET of task i keeping the set feasible.
func MaxWCET(ts TaskSet, i int, oracle FeasibilityOracle) (int64, error) {
	return sensitivity.MaxWCET(ts, i, oracle)
}

// MinDeadline returns the smallest relative deadline of task i keeping the
// set feasible.
func MinDeadline(ts TaskSet, i int, oracle FeasibilityOracle) (int64, error) {
	return sensitivity.MinDeadline(ts, i, oracle)
}

// MinPeriod returns the smallest period of task i keeping the set
// feasible.
func MinPeriod(ts TaskSet, i int, oracle FeasibilityOracle) (int64, error) {
	return sensitivity.MinPeriod(ts, i, oracle)
}

// CriticalScaling returns the largest WCET scaling factor num/denom that
// keeps the set feasible (the critical scaling factor).
func CriticalScaling(ts TaskSet, denom int64, oracle FeasibilityOracle) (int64, error) {
	return sensitivity.CriticalScaling(ts, denom, oracle)
}

// WCETSlack returns, per task, how much its WCET could grow alone without
// breaking feasibility.
func WCETSlack(ts TaskSet, oracle FeasibilityOracle) ([]int64, error) {
	return sensitivity.Slack(ts, oracle)
}
