package edf_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	edf "repro"
)

func TestFacadeLoadTaskSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	payload := `{"name":"demo","tasks":[{"wcet":1,"deadline":5,"period":5}]}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, name, err := edf.LoadTaskSet(path)
	if err != nil || name != "demo" || len(ts) != 1 {
		t.Fatalf("load: %v %q %v", ts, name, err)
	}
}

func TestFacadeOverheads(t *testing.T) {
	ts := edf.TaskSet{
		{Name: "urgent", WCET: 3, Deadline: 4, Period: 20},
		{Name: "bulk", WCET: 8, Deadline: 40, Period: 40, CriticalSection: 2},
	}
	inflated := edf.InflateOverheads(ts, edf.Overheads{ContextSwitch: 1})
	if inflated[0].WCET != 5 {
		t.Errorf("inflated WCET = %d, want 5", inflated[0].WCET)
	}
	b := edf.SRPBlocking(ts)
	if b == nil {
		t.Fatal("nil blocking function")
	}
	if got := b(0); got != 2 {
		t.Errorf("blocking at 0 = %d, want 2", got)
	}
	if r := edf.AllApproxWithOverheads(ts, edf.Overheads{}, edf.Options{}); r.Verdict != edf.Infeasible {
		t.Errorf("allapprox with blocking: %v", r.Verdict)
	}
	if r := edf.DynamicErrorWithOverheads(ts, edf.Overheads{}, edf.Options{}); r.Verdict != edf.Infeasible {
		t.Errorf("dynamic with blocking: %v", r.Verdict)
	}
	if r := edf.ProcessorDemandWithOverheads(ts, edf.Overheads{}, edf.Options{}); r.Verdict != edf.Infeasible {
		t.Errorf("pd with blocking: %v", r.Verdict)
	}
	if r := edf.DeviWithOverheads(ts, edf.Overheads{}); r.Verdict == edf.Feasible {
		t.Errorf("devi with blocking accepted: %v", r.Verdict)
	}
}

func TestFacadeResponse(t *testing.T) {
	ts := demoSet()
	r, ok := edf.WCRT(ts, 0, edf.ResponseOptions{})
	if !ok || r < ts[0].WCET {
		t.Fatalf("WCRT = %d,%v", r, ok)
	}
	all, ok := edf.WCRTAll(ts, edf.ResponseOptions{})
	if !ok || len(all) != len(ts) {
		t.Fatalf("WCRTAll = %v,%v", all, ok)
	}
	feasible, ok := edf.FeasibleByResponse(ts, edf.ResponseOptions{})
	if !ok || !feasible {
		t.Fatalf("FeasibleByResponse = %v,%v", feasible, ok)
	}
}

func TestFacadeSensitivity(t *testing.T) {
	ts := demoSet()
	maxC, err := edf.MaxWCET(ts, 0, nil)
	if err != nil || maxC < ts[0].WCET {
		t.Fatalf("MaxWCET = %d, %v", maxC, err)
	}
	minD, err := edf.MinDeadline(ts, 1, nil)
	if err != nil || minD > ts[1].Deadline {
		t.Fatalf("MinDeadline = %d, %v", minD, err)
	}
	minT, err := edf.MinPeriod(ts, 2, nil)
	if err != nil || minT > ts[2].Period {
		t.Fatalf("MinPeriod = %d, %v", minT, err)
	}
	alpha, err := edf.CriticalScaling(ts, 100, nil)
	if err != nil || alpha < 100 {
		t.Fatalf("CriticalScaling = %d, %v (feasible set must scale >= 1)", alpha, err)
	}
}

func TestFacadeAsync(t *testing.T) {
	ts := edf.TaskSet{
		{WCET: 1, Deadline: 1, Period: 2, Phase: 0},
		{WCET: 1, Deadline: 1, Period: 2, Phase: 1},
	}
	res, err := edf.AsyncExact(ts, edf.AsyncOptions{})
	if err != nil || res.Verdict != edf.Feasible {
		t.Fatalf("AsyncExact = %v, %v", res.Verdict, err)
	}
	if r := edf.AsyncSufficient(ts, edf.Options{}); r.Verdict == edf.Feasible {
		t.Fatalf("sync reduction accepted the phased-only set")
	}
	h, ok := edf.AsyncHorizon(ts)
	if !ok || h != 1+2*2 {
		t.Fatalf("AsyncHorizon = %d,%v, want 5", h, ok)
	}
}

func TestFacadeGantt(t *testing.T) {
	ts := demoSet()
	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: 100, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := edf.RenderGantt(&b, ts, rep.Trace, edf.GanttOptions{Width: 30}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(idle)") {
		t.Errorf("gantt output: %q", b.String())
	}
}

func TestFacadeBaruahAndBest(t *testing.T) {
	ts := demoSet()
	if b, ok := edf.BaruahBound(ts); !ok || b <= 0 {
		t.Errorf("Baruah = %d,%v", b, ok)
	}
	if got := edf.DbfTask(ts[0], 8); got != 2 {
		t.Errorf("DbfTask = %d", got)
	}
}

func TestFacadeGenerateInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts, err := edf.GenerateInBand(edf.GenConfig{
		N: 10, Utilization: 0.9, PeriodMin: 1000, PeriodMax: 50000, GapMean: 0.2,
	}, 0.88, 0.92, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if u := edf.Utilization(ts); u < 0.88 || u > 0.92 {
		t.Errorf("U = %v outside band", u)
	}
}
