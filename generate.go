package edf

import (
	"math/rand"

	"repro/internal/taskgen"
)

// GenConfig describes a random task set in the paper's experimental setup
// (UUniFast utilizations, uniform or log-uniform periods, average deadline
// gap).
type GenConfig = taskgen.Config

// Generate creates one random task set.
func Generate(cfg GenConfig, rng *rand.Rand) (TaskSet, error) { return taskgen.New(cfg, rng) }

// GenerateInBand creates a random task set whose achieved utilization lies
// in [lo, hi], retrying up to attempts times.
func GenerateInBand(cfg GenConfig, lo, hi float64, attempts int, rng *rand.Rand) (TaskSet, error) {
	return taskgen.NewInUtilizationBand(cfg, lo, hi, attempts, rng)
}

// UUniFast distributes total utilization u over n tasks without bias
// (Bini & Buttazzo).
func UUniFast(n int, u float64, rng *rand.Rand) []float64 { return taskgen.UUniFast(n, u, rng) }
