package edf

import (
	"context"

	"repro/internal/engine"
)

// Analyzer is a named feasibility test from the analysis engine registry.
type Analyzer = engine.Analyzer

// EventAnalyzer is an analyzer that also runs on event-driven task sets.
type EventAnalyzer = engine.EventAnalyzer

// AnalyzerInfo describes a registered analyzer.
type AnalyzerInfo = engine.Info

// AnalyzerKind classifies analyzers as exact or sufficient.
type AnalyzerKind = engine.Kind

// Analyzer kinds.
const (
	AnalyzerExact      = engine.Exact
	AnalyzerSufficient = engine.Sufficient
)

// BatchJob is one (task set, analyzer) unit of batch work.
type BatchJob = engine.Job

// BatchResult is the outcome of one batch job with per-job telemetry.
type BatchResult = engine.JobResult

// Analyzers returns every registered analyzer, cheapest first.
func Analyzers() []Analyzer { return engine.All() }

// AnalyzerByName looks an analyzer up by name or label; it also resolves
// parameterized superposition names like "superpos(5)".
func AnalyzerByName(name string) (Analyzer, bool) { return engine.Get(name) }

// ParseAnalyzers resolves a comma-separated analyzer spec ("devi,qpa",
// "all", "exact", "superpos(7)", ...) against the registry.
func ParseAnalyzers(spec string) ([]Analyzer, error) { return engine.Parse(spec) }

// RegisterAnalyzer adds a custom analyzer to the registry, making it
// available to ParseAnalyzers, the CLI tools and the experiments.
func RegisterAnalyzer(a Analyzer) error { return engine.Register(a) }

// Analyze is the recommended entry point: the paper's cheap-first
// escalation. Sufficient tests run first (Liu-Layland, Devi, SuperPos) and
// the exact all-approximated test decides only when none of them settles
// the verdict, so the common case costs as little as the cheapest test
// while the answer stays exact.
func Analyze(ts TaskSet, opt Options) Result {
	return engine.MustGet("cascade").Analyze(ts, opt)
}

// AnalyzeBatch fans the (set x analyzer) cross product out over a bounded
// worker pool (workers <= 0 selects runtime.NumCPU()) and returns one
// result per job in deterministic set-major order, independent of the
// worker count. Cancel the context to stop early; skipped jobs carry the
// context error.
func AnalyzeBatch(ctx context.Context, sets []TaskSet, analyzers []Analyzer, opt Options, workers int) []BatchResult {
	return engine.Run(ctx, engine.Batch(sets, analyzers, opt), engine.RunOptions{Workers: workers})
}

// AnalyzeEvents runs an analyzer on an event-driven task set. ok is false
// when the analyzer has no event-stream support.
func AnalyzeEvents(a Analyzer, tasks []EventTask, opt Options) (Result, bool) {
	ea, isEvent := a.(EventAnalyzer)
	if !isEvent {
		return Result{Verdict: Undecided}, false
	}
	return ea.AnalyzeEvents(tasks, opt), true
}
