package edf

import "repro/internal/examplesets"

// Example is a named literature task set from the paper's Table 1.
type Example = examplesets.Example

// Examples returns the five literature sets of Table 1 (Burns, Ma & Shin,
// GAP, Gresser 1, Gresser 2; see DESIGN.md for substitution notes).
func Examples() []Example { return examplesets.All() }

// ExampleByName returns one literature set by its short name.
func ExampleByName(name string) (Example, bool) { return examplesets.ByName(name) }
