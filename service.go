package edf

import (
	"repro/internal/engine"
	"repro/internal/service"
)

// Fingerprint returns the content address of an analysis: a hex SHA-256
// over a canonical encoding of (task set, analyzer name, options). Equal
// fingerprints guarantee equal results, so the fingerprint is a sound key
// for caching analysis outcomes (the edfd service uses exactly this). ok
// is false when the options are not content-addressable (a non-nil
// Blocking function); such analyses must not be cached.
func Fingerprint(ts TaskSet, analyzer string, opt Options) (fp string, ok bool) {
	return engine.Fingerprint(ts, analyzer, opt)
}

// Admission is a concurrency-safe online admission controller: propose
// tasks one at a time, commit or roll back the staged ones. It powers the
// edfd session endpoints and is equally usable in process — see
// examples/admission.
type Admission = service.Admission

// AdmissionConfig tunes an admission controller.
type AdmissionConfig = service.AdmissionConfig

// AdmissionStats counts an admission controller's lifetime activity.
type AdmissionStats = service.AdmissionStats

// ProposeOutcome reports one admission decision.
type ProposeOutcome = service.ProposeOutcome

// FinishOutcome reports a commit or rollback of staged tasks.
type FinishOutcome = service.FinishOutcome

// NewAdmission builds an online admission controller. The zero config
// admits with the cascade (cheap-first, exact verdicts) on an empty set.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	return service.NewAdmission(cfg)
}

// ServiceConfig tunes an in-process edfd server.
type ServiceConfig = service.Config

// ServiceServer is the edfd HTTP service over the analysis engine; mount
// Handler() on an http.Server (cmd/edfd does) or under a larger mux.
type ServiceServer = service.Server

// NewService builds the edfd HTTP service.
func NewService(cfg ServiceConfig) *ServiceServer { return service.New(cfg) }
