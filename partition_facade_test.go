package edf_test

import (
	"context"
	"errors"
	"testing"

	edf "repro"
)

func TestFacadeAnalyzePartitioned(t *testing.T) {
	wl := edf.PartitionedWorkload(
		[]edf.Processor{{Name: "p0"}, {Name: "p1", Speed: 2}},
		[]edf.PartitionedTask{
			{Task: edf.Task{Name: "a", WCET: 6, Deadline: 10, Period: 10}},
			{Task: edf.Task{Name: "b", WCET: 6, Deadline: 10, Period: 10}},
			{Task: edf.Task{Name: "pinned", WCET: 2, Deadline: 10, Period: 10}, Affinity: []int{0}},
		})
	pl, err := edf.AnalyzePartitioned(context.Background(), wl, edf.PlacementConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Feasible || len(pl.Processors) != 2 {
		t.Fatalf("placement: %+v", pl)
	}
	if pl.Assignment[2] != 0 {
		t.Errorf("affinity-pinned task placed on processor %d", pl.Assignment[2])
	}

	// The uniprocessor facade refuses partitioned workloads with the
	// typed error.
	a, _ := edf.AnalyzerByName("cascade")
	_, err = edf.AnalyzeWorkload(a, wl, edf.Options{})
	var pe *edf.PartitionedUnsupportedError
	if !errors.As(err, &pe) {
		t.Errorf("AnalyzeWorkload(partitioned): %v", err)
	}

	// Heuristic selection is honored and reported.
	pl, err = edf.AnalyzePartitioned(context.Background(), wl, edf.PlacementConfig{
		Heuristics: []edf.PlacementHeuristic{edf.PlaceWorstFit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Heuristic != edf.PlaceWorstFit {
		t.Errorf("heuristic %q, want worst-fit", pl.Heuristic)
	}
}
