// Package edf is a library for exact and approximate feasibility analysis
// of uniprocessor real-time systems under preemptive EDF scheduling.
//
// It reproduces Albers & Slomka, "Efficient Feasibility Analysis for
// Real-Time Systems with EDF Scheduling" (DATE 2005): the classic
// Liu-Layland and Devi sufficient tests, the exact processor demand test of
// Baruah et al., the superposition approximation SuperPos(x), and the
// paper's two new exact tests — the dynamic error test and the
// all-approximated test — which decide feasibility with orders of magnitude
// fewer test intervals than the processor demand test while matching the
// cost of the sufficient tests on task sets those can already decide.
//
// # Quick start
//
//	ts := edf.TaskSet{
//		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
//		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
//	}
//	res := edf.Analyze(ts, edf.Options{})
//	fmt.Println(res.Verdict, res.Iterations)
//
// Analyze runs the paper's cheap-first escalation (sufficient tests, then
// the exact all-approximated test). Every test is also available directly
// (AllApprox, QPA, ...) or by name through the analysis engine registry
// (Analyzers, AnalyzerByName, ParseAnalyzers), and AnalyzeBatch fans many
// task sets out over a parallel worker pool with deterministic ordering.
//
// The iterative tests also run on Gresser event streams (EventTask /
// EventSources), the generalized activation model the paper names as the
// extension target. A preemptive EDF simulator (Simulate) provides replay
// and schedule traces, and the taskgen-backed Generate reproduces the
// random workloads of the paper's evaluation.
package edf

import (
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
)

// Task is a sporadic task τ = (C, D, T, φ). See model.Task.
type Task = model.Task

// TaskSet is an ordered set of sporadic tasks. See model.TaskSet.
type TaskSet = model.TaskSet

// LoadTaskSet reads a task set from a JSON file (object with "tasks" or a
// bare task array) and validates it.
func LoadTaskSet(path string) (TaskSet, string, error) { return model.LoadFile(path) }

// Verdict is a feasibility test outcome.
type Verdict = core.Verdict

// Verdicts.
const (
	Feasible    = core.Feasible
	Infeasible  = core.Infeasible
	NotAccepted = core.NotAccepted
	Undecided   = core.Undecided
)

// Result reports the outcome and effort of a feasibility test.
type Result = core.Result

// Options tune the feasibility tests; the zero value selects exact
// arithmetic, FIFO revisions and no caps.
type Options = core.Options

// Arithmetic modes for the approximated accumulators. ArithExact (the
// default) runs on exact int64 rationals with 128-bit intermediates that
// transparently fall back to big.Rat on overflow; ArithBigRat forces the
// big.Rat reference implementation; ArithFloat64 trades exactness for
// speed with tolerance-based comparisons.
const (
	ArithExact   = core.ArithExact
	ArithFloat64 = core.ArithFloat64
	ArithBigRat  = core.ArithBigRat
)

// Scratch is reusable analysis working memory (test list, job counters,
// source adapters). Attach one to Options.Scratch and reuse it across
// calls to run the iterative tests allocation-free in steady state; a
// Scratch serves one analysis at a time and must not be shared between
// concurrent analyses. When Options.Scratch is nil the tests borrow from
// an internal pool.
type Scratch = demand.Scratch

// NewScratch returns an empty analysis Scratch.
func NewScratch() *Scratch { return demand.NewScratch() }

// Revision orders for the all-approximated test.
const (
	ReviseFIFO     = core.ReviseFIFO
	ReviseLIFO     = core.ReviseLIFO
	ReviseMaxError = core.ReviseMaxError
)

// LiuLayland applies the utilization-bound test (U <= 1, deadlines at or
// beyond periods).
func LiuLayland(ts TaskSet) Result { return core.LiuLayland(ts) }

// Devi applies Devi's sufficient test (Definition 1 of the paper).
func Devi(ts TaskSet) Result { return core.Devi(ts) }

// ProcessorDemand applies the exact processor demand test of Baruah et al.
func ProcessorDemand(ts TaskSet, opt Options) Result { return core.ProcessorDemand(ts, opt) }

// QPA applies Quick Processor-demand Analysis (Zhang & Burns, 2009), an
// exact post-paper baseline.
func QPA(ts TaskSet, opt Options) Result { return core.QPA(ts, opt) }

// SuperPos applies the superposition approximation SuperPos(level);
// SuperPos(1) is exactly Devi's test.
func SuperPos(ts TaskSet, level int64, opt Options) Result { return core.SuperPos(ts, level, opt) }

// SuperPosEpsilon applies the superposition test at the level matching a
// relative approximation error epsilon (the interface of Chakraborty et
// al.'s approximate schedulability analysis).
func SuperPosEpsilon(ts TaskSet, epsilon float64, opt Options) Result {
	return core.SuperPosEpsilon(ts, epsilon, opt)
}

// DynamicError applies the paper's dynamic error test: an exact test that
// adapts the superposition level on demand (Section 4.1).
func DynamicError(ts TaskSet, opt Options) Result { return core.DynamicError(ts, opt) }

// AllApprox applies the paper's all-approximated test: an exact test that
// approximates every task immediately and revises approximations only where
// the approximated demand exceeds the capacity (Section 4.2).
func AllApprox(ts TaskSet, opt Options) Result { return core.AllApprox(ts, opt) }

// Exact decides feasibility with the library default (the all-approximated
// test, the fastest exact test of the paper).
func Exact(ts TaskSet) Result { return core.AllApprox(ts, Options{}) }
