package edf

import (
	"io"

	"repro/internal/sim"
)

// SimOptions configure a schedule simulation.
type SimOptions = sim.Options

// SimReport is the outcome of a schedule simulation.
type SimReport = sim.Report

// SimSegment is one executed span of the simulated schedule.
type SimSegment = sim.Segment

// Simulate replays the task set under preemptive EDF on integer time until
// the horizon or the first deadline miss. Phases are honored; use
// ts.Synchronous() for the arrival pattern the feasibility tests analyze.
func Simulate(ts TaskSet, opt SimOptions) (SimReport, error) { return sim.Run(ts, opt) }

// SimHorizon returns a sound simulation horizon for verifying a feasibility
// verdict by replay: the smallest cheap feasibility bound (or, for fully
// utilized sets, hyperperiod + max deadline).
func SimHorizon(ts TaskSet) (int64, bool) {
	b, _, ok := BestBound(ts)
	return b, ok
}

// GanttOptions configure RenderGantt.
type GanttOptions = sim.GanttOptions

// RenderGantt writes an ASCII Gantt chart of a recorded schedule trace.
func RenderGantt(w io.Writer, ts TaskSet, trace []SimSegment, opt GanttOptions) error {
	return sim.RenderGantt(w, ts, trace, opt)
}
