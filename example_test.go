package edf_test

import (
	"fmt"

	edf "repro"
)

// ExampleExact shows the one-call exact feasibility decision.
func ExampleExact() {
	ts := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	res := edf.Exact(ts)
	fmt.Println(res.Verdict, res.Iterations)
	// Output: feasible 2
}

// ExampleDevi shows the sufficient test of Definition 1 failing on a
// feasible set with a tight-deadline burst task, the case motivating the
// paper's exact tests.
func ExampleDevi() {
	ts := edf.TaskSet{
		{Name: "fast", WCET: 1, Deadline: 5, Period: 5},
		{Name: "burst", WCET: 2, Deadline: 2, Period: 16},
		{Name: "dsp", WCET: 4, Deadline: 8, Period: 16},
	}
	fmt.Println("devi:", edf.Devi(ts).Verdict)
	fmt.Println("exact:", edf.AllApprox(ts, edf.Options{}).Verdict)
	// Output:
	// devi: not-accepted
	// exact: feasible
}

// ExampleSuperPos shows the adjustable approximation levels nesting
// between Devi's test (level 1) and the exact verdict.
func ExampleSuperPos() {
	ts := edf.TaskSet{
		{WCET: 1, Deadline: 5, Period: 5},
		{WCET: 2, Deadline: 2, Period: 16},
		{WCET: 4, Deadline: 8, Period: 16},
	}
	for _, level := range []int64{1, 4} {
		r := edf.SuperPos(ts, level, edf.Options{})
		fmt.Printf("SuperPos(%d): %v\n", level, r.Verdict)
	}
	// Output:
	// SuperPos(1): not-accepted
	// SuperPos(4): feasible
}

// ExampleProcessorDemand shows the classic exact test and its effort
// metric next to the paper's all-approximated test.
func ExampleProcessorDemand() {
	ex, _ := edf.ExampleByName("gresser1")
	pd := edf.ProcessorDemand(ex.Set, edf.Options{})
	all := edf.AllApprox(ex.Set, edf.Options{})
	fmt.Printf("processor demand: %v in %d intervals\n", pd.Verdict, pd.Iterations)
	fmt.Printf("all-approximated: %v in %d intervals\n", all.Verdict, all.Iterations)
	// Output:
	// processor demand: feasible in 172 intervals
	// all-approximated: feasible in 20 intervals
}

// ExampleSimulate shows replaying a schedule and inspecting the outcome.
func ExampleSimulate() {
	ts := edf.TaskSet{
		{Name: "a", WCET: 2, Deadline: 5, Period: 5},
		{Name: "b", WCET: 4, Deadline: 10, Period: 10},
	}
	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: 20})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Missed, rep.JobsCompleted)
	// Output: false 6
}

// ExampleBurstStream shows event-stream modelling of a frame burst.
func ExampleBurstStream() {
	burst := edf.BurstStream(1000, 3, 50) // 3 frames 50 apart, every 1000
	for _, I := range []int64{0, 50, 100, 999, 1000} {
		fmt.Printf("eta(%d)=%d ", I, burst.Events(I))
	}
	fmt.Println()
	// Output: eta(0)=1 eta(50)=2 eta(100)=3 eta(999)=3 eta(1000)=4
}

// ExampleWCRTAll shows the response-time view of a task set.
func ExampleWCRTAll() {
	ts := edf.TaskSet{
		{Name: "hi", WCET: 2, Deadline: 5, Period: 10},
		{Name: "lo", WCET: 3, Deadline: 9, Period: 10},
	}
	rts, _ := edf.WCRTAll(ts, edf.ResponseOptions{})
	fmt.Println(rts)
	// Output: [2 5]
}

// ExampleCriticalScaling shows the sensitivity query "how much may every
// WCET grow".
func ExampleCriticalScaling() {
	ts := edf.TaskSet{
		{WCET: 2, Deadline: 10, Period: 10},
		{WCET: 3, Deadline: 15, Period: 15},
	}
	num, _ := edf.CriticalScaling(ts, 100, nil)
	fmt.Printf("alpha = %d/100\n", num)
	// Output: alpha = 233/100
}

// ExampleAllApproxWithOverheads shows SRP blocking flipping a verdict.
func ExampleAllApproxWithOverheads() {
	ts := edf.TaskSet{
		{Name: "urgent", WCET: 3, Deadline: 4, Period: 20},
		{Name: "bulk", WCET: 8, Deadline: 40, Period: 40, CriticalSection: 2},
	}
	plain := edf.AllApprox(ts, edf.Options{})
	blocked := edf.AllApproxWithOverheads(ts, edf.Overheads{}, edf.Options{})
	fmt.Println(plain.Verdict, "->", blocked.Verdict)
	// Output: feasible -> infeasible
}
