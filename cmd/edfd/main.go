// Command edfd serves EDF feasibility analysis over HTTP/JSON: stateless
// analyze/batch endpoints over polymorphic workloads (sporadic task sets
// and Gresser event streams) backed by a content-addressed result cache,
// and stateful online admission sessions.
//
// Usage:
//
//	edfd [-addr :8080] [-cache 4096] [-workers 0] [-inflight 256]
//	     [-timeout 30s] [-sessions 1024] [-session-ttl 0]
//
// Endpoints:
//
//	POST /v1/analyze                      one workload, one analyzer (default cascade)
//	POST /v1/batch                        workloads x analyzers over the worker pool
//	GET  /v1/analyzers                    the analyzer registry
//	POST /v1/sessions                     open an admission session
//	GET|DELETE /v1/sessions/{id}          inspect / close a session
//	POST /v1/sessions/{id}/propose        stage a task if still feasible
//	POST /v1/sessions/{id}/propose-batch  stage several tasks, one verdict each
//	POST /v1/sessions/{id}/commit         make staged tasks permanent
//	POST /v1/sessions/{id}/rollback       discard staged tasks
//	GET  /healthz                         liveness
//	GET  /metrics                         text counters (cache, sessions, requests)
//
// Workloads are {"model": "sporadic"|"events", "tasks": [...]}; a missing
// model means sporadic, so pre-workload payloads keep working. With
// -session-ttl > 0 a background sweeper closes admission sessions idle
// past the TTL (off by default).
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", service.DefaultCacheCapacity, "result cache capacity in entries (negative disables)")
		workers    = flag.Int("workers", 0, "batch worker pool size (0 = all CPUs)")
		inflight   = flag.Int("inflight", service.DefaultMaxInFlight, "max concurrent /v1 requests before 429")
		timeout    = flag.Duration("timeout", service.DefaultRequestTimeout, "per-request analysis deadline")
		sessions   = flag.Int("sessions", service.DefaultMaxSessions, "max open admission sessions")
		sessionTTL = flag.Duration("session-ttl", 0, "close admission sessions idle past this duration (0 disables)")
	)
	flag.Parse()

	srv := service.New(service.Config{
		CacheCapacity:  *cache,
		Workers:        *workers,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		MaxSessions:    *sessions,
		SessionTTL:     *sessionTTL,
	})
	defer srv.Close()
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener resolves ":0" to a real port before the
	// banner prints, so scripts (make smoke) can parse the address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfd:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("edfd: listening on %s (cache %d, inflight %d, timeout %s, session-ttl %s)\n",
			ln.Addr(), *cache, *inflight, *timeout, *sessionTTL)
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "edfd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight work, then exit.
	fmt.Println("edfd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "edfd: shutdown:", err)
		os.Exit(1)
	}
}
