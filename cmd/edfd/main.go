// Command edfd serves EDF feasibility analysis over HTTP/JSON: stateless
// analyze/batch endpoints over polymorphic workloads (sporadic task sets
// and Gresser event streams) backed by a content-addressed result cache,
// and stateful online admission sessions.
//
// Usage:
//
//	edfd [-addr :8080] [-cache 4096] [-workers 0] [-inflight 256]
//	     [-timeout 30s] [-sessions 1024] [-session-ttl 0]
//	     [-store-dir ""] [-store-node ""] [-snapshot-interval 30s]
//	     [-store-batch 64] [-store-max-wait 2ms]
//
// Endpoints:
//
//	POST /v1/analyze                      one workload, one analyzer (default cascade)
//	POST /v1/batch                        workloads x analyzers over the worker pool
//	GET  /v1/analyzers                    the analyzer registry
//	POST /v1/sessions                     open an admission session
//	GET|DELETE /v1/sessions/{id}          inspect / close a session
//	POST /v1/sessions/{id}/propose        stage a task if still feasible
//	POST /v1/sessions/{id}/propose-batch  stage several tasks, one verdict each
//	POST /v1/sessions/{id}/commit         make staged tasks permanent
//	POST /v1/sessions/{id}/rollback       discard staged tasks
//	GET  /v1/sessions/{id}/events         live SSE admission feed for one session
//	GET  /v1/events                       live SSE admission feed, all sessions
//	GET  /v1/traces                       recent request traces
//	GET  /v1/traces/{id}                  one request's span record
//	GET  /healthz                         liveness
//	GET  /metrics                         Prometheus text exposition
//
// Workloads are {"model": "sporadic"|"events", "tasks": [...]}; a missing
// model means sporadic, so pre-workload payloads keep working. With
// -session-ttl > 0 a background sweeper closes admission sessions idle
// past the TTL (off by default).
//
// With -store-dir, admission decisions are journaled to a write-ahead
// log in that directory (group-committed, compacted by periodic
// snapshots) and a restarted edfd resumes its committed sessions.
// Several replicas may share one directory — each journals to its own
// per-node segment, named by -store-node (default: a stable name
// persisted in the directory's node-id file; replicas sharing a
// directory must set distinct explicit names) — which is what lets
// edfproxy hand a dead replica's sessions to a surviving peer.
//
// Diagnostics go to stderr as JSON (log/slog) carrying trace/session
// attributes; -log-level tunes the threshold. The stdout banner line
// stays printf-style — scripts parse it for the listen address. With
// -debug-addr a second mux serves net/http/pprof on that address only.
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int("cache", service.DefaultCacheCapacity, "result cache capacity in entries (negative disables)")
		workers    = flag.Int("workers", 0, "batch worker pool size (0 = all CPUs)")
		inflight   = flag.Int("inflight", service.DefaultMaxInFlight, "max concurrent /v1 requests before 429")
		timeout    = flag.Duration("timeout", service.DefaultRequestTimeout, "per-request analysis deadline")
		sessions   = flag.Int("sessions", service.DefaultMaxSessions, "max open admission sessions")
		sessionTTL = flag.Duration("session-ttl", 0, "close admission sessions idle past this duration (0 disables)")
		logLevel   = flag.String("log-level", "info", "slog threshold: debug, info, warn or error")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this address (off when empty)")
		storeDir   = flag.String("store-dir", "", "journal admission decisions to this directory (off when empty)")
		storeNode  = flag.String("store-node", "", "segment name inside -store-dir (default: persisted node-id file)")
		snapEvery  = flag.Duration("snapshot-interval", service.DefaultSnapshotInterval, "compacting store snapshot cadence")
		storeBatch = flag.Int("store-batch", store.DefaultBatchSize, "records per group-commit fsync batch")
		storeWait  = flag.Duration("store-max-wait", store.DefaultMaxWait, "max wait before a partial batch is fsynced")
	)
	flag.Parse()

	log, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfd:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener resolves ":0" to a real port before the
	// banner prints, so scripts (make smoke) can parse the address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfd:", err)
		os.Exit(1)
	}

	var st *store.DiskStore
	if *storeDir != "" {
		// The default node name is persisted in the store dir (node-id
		// file), NOT derived from the listen address: with -addr :0 the
		// address changes every restart, which would orphan the previous
		// run's segments — replayed forever, compacted never. Fleets
		// sharing one directory must pass explicit -store-node values.
		node := *storeNode
		if node == "" {
			node, err = store.DefaultNode(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edfd:", err)
				os.Exit(1)
			}
		}
		st, err = store.Open(*storeDir, node, store.Options{
			BatchSize: *storeBatch,
			MaxWait:   *storeWait,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edfd:", err)
			os.Exit(1)
		}
		defer st.Close()
		log.Info("durable store open", "dir", *storeDir, "node", node,
			"batch", *storeBatch, "max_wait", storeWait.String())
	}
	cfg := service.Config{
		CacheCapacity:    *cache,
		Workers:          *workers,
		MaxInFlight:      *inflight,
		RequestTimeout:   *timeout,
		MaxSessions:      *sessions,
		SessionTTL:       *sessionTTL,
		SnapshotInterval: *snapEvery,
		Logger:           log,
	}
	if st != nil {
		cfg.Store = st
	}
	srv := service.New(cfg)
	defer srv.Close()
	if *debugAddr != "" {
		go serveDebug(log, *debugAddr)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		// The stdout banner is the scriptable contract (make smoke parses
		// the address); structured diagnostics go to stderr via slog.
		fmt.Printf("edfd: listening on %s (cache %d, inflight %d, timeout %s, session-ttl %s)\n",
			ln.Addr(), *cache, *inflight, *timeout, *sessionTTL)
		log.Info("listening", "addr", ln.Addr().String(), "cache", *cache,
			"inflight", *inflight, "timeout", timeout.String(), "session_ttl", sessionTTL.String())
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight work, then exit.
	// Close first so open SSE feeds end — otherwise Shutdown would wait
	// its full timeout on streams that never finish on their own.
	log.Info("shutting down")
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's JSON logger at the requested threshold.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// serveDebug exposes net/http/pprof on its own opt-in address, keeping
// profiling off the public API mux.
func serveDebug(log *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Info("debug mux listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Error("debug mux failed", "err", err)
	}
}
