// Command edfd serves EDF feasibility analysis over HTTP/JSON: stateless
// analyze/batch endpoints backed by a content-addressed result cache, and
// stateful online admission sessions.
//
// Usage:
//
//	edfd [-addr :8080] [-cache 4096] [-workers 0] [-inflight 256]
//	     [-timeout 30s] [-sessions 1024]
//
// Endpoints:
//
//	POST /v1/analyze                 one task set, one analyzer (default cascade)
//	POST /v1/batch                   sets x analyzers over the worker pool
//	GET  /v1/analyzers               the analyzer registry
//	POST /v1/sessions                open an admission session
//	GET|DELETE /v1/sessions/{id}     inspect / close a session
//	POST /v1/sessions/{id}/propose   stage a task if still feasible
//	POST /v1/sessions/{id}/commit    make staged tasks permanent
//	POST /v1/sessions/{id}/rollback  discard staged tasks
//	GET  /healthz                    liveness
//	GET  /metrics                    text counters (cache, sessions, requests)
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int("cache", service.DefaultCacheCapacity, "result cache capacity in entries (negative disables)")
		workers  = flag.Int("workers", 0, "batch worker pool size (0 = all CPUs)")
		inflight = flag.Int("inflight", service.DefaultMaxInFlight, "max concurrent /v1 requests before 429")
		timeout  = flag.Duration("timeout", service.DefaultRequestTimeout, "per-request analysis deadline")
		sessions = flag.Int("sessions", service.DefaultMaxSessions, "max open admission sessions")
	)
	flag.Parse()

	srv := service.New(service.Config{
		CacheCapacity:  *cache,
		Workers:        *workers,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		MaxSessions:    *sessions,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("edfd: listening on %s (cache %d, inflight %d, timeout %s)\n",
			*addr, *cache, *inflight, *timeout)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "edfd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish in-flight work, then exit.
	fmt.Println("edfd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "edfd: shutdown:", err)
		os.Exit(1)
	}
}
