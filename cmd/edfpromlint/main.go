// Command edfpromlint is the metrics-contract lint behind `make
// lint-metrics`: it boots real daemons on ephemeral ports — edfd
// replicas behind an edfproxy — drives enough traffic to populate every
// counter family, then scrapes each daemon's /metrics page and validates
// it as Prometheus text exposition with the repo's own parser
// (internal/obs): # TYPE before samples, family contiguity, histogram
// +Inf/_count consistency, label escaping. It also enforces the naming
// contract: every family carries an edfd_ or edfproxy_ prefix.
//
// Usage:
//
//	edfpromlint [-replicas n] [-edfd path] [-edfproxy path] [-timeout 120s]
//
// Without -edfd/-edfproxy the daemons are compiled from ./cmd into a
// temp dir, so `go run ./cmd/edfpromlint` works from a clean checkout.
// On a lint failure the offending page is printed in full, so CI logs
// show exactly which line broke the format.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	edf "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	var (
		replicas  = flag.Int("replicas", 2, "edfd replicas behind the proxy")
		edfdPath  = flag.String("edfd", "", "pre-built edfd binary (default: build ./cmd/edfd)")
		proxyPath = flag.String("edfproxy", "", "pre-built edfproxy binary (default: build ./cmd/edfproxy)")
		timeout   = flag.Duration("timeout", 120*time.Second, "overall deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var daemons fleet
	err := run(ctx, &daemons, *edfdPath, *proxyPath, *replicas)
	daemons.stopAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfpromlint: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("edfpromlint: PASS")
}

func run(ctx context.Context, daemons *fleet, edfdPath, proxyPath string, n int) error {
	if n < 1 {
		return fmt.Errorf("-replicas must be >= 1")
	}
	if edfdPath == "" || proxyPath == "" {
		dir, err := os.MkdirTemp("", "edfpromlint")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if edfdPath == "" {
			if edfdPath, err = buildTool(ctx, dir, "edfd"); err != nil {
				return err
			}
		}
		if proxyPath == "" {
			if proxyPath, err = buildTool(ctx, dir, "edfproxy"); err != nil {
				return err
			}
		}
	}

	var urls []string
	for i := range n {
		d, err := daemons.start(ctx, "edfd", edfdPath, "-addr", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		urls = append(urls, "http://"+d.addr)
	}
	proxy, err := daemons.start(ctx, "edfproxy", proxyPath,
		"-addr", "127.0.0.1:0", "-replicas", strings.Join(urls, ","), "-health-interval", "250ms")
	if err != nil {
		return err
	}
	c := client.New("http://"+proxy.addr, nil)
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}

	// Touch every subsystem once so the scraped pages exercise live
	// counters and a populated latency histogram, not just zeros.
	if err := driveTraffic(ctx, c); err != nil {
		return err
	}

	for _, d := range daemons.daemons {
		page, err := client.New("http://"+d.addr, nil).Metrics(ctx)
		if err != nil {
			return fmt.Errorf("%s (%s): scraping /metrics: %w", d.name, d.addr, err)
		}
		families, samples, err := lintPage(d.name, page)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edfpromlint: --- %s (%s) /metrics ---\n%s\nedfpromlint: --- end ---\n",
				d.name, d.addr, strings.TrimSpace(page))
			return fmt.Errorf("%s (%s): %w", d.name, d.addr, err)
		}
		fmt.Printf("edfpromlint: %s (%s): %d families, %d samples ok\n",
			d.name, d.addr, families, samples)
	}
	return nil
}

// driveTraffic runs one request through each metered path: analyze
// (twice, for a cache hit), batch, and a session with propose, commit,
// rollback and close.
func driveTraffic(ctx context.Context, c *client.Client) error {
	set := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	wl := edf.SporadicWorkload(set)
	for range 2 {
		if _, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "lint", Workload: wl}); err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
	}
	if _, _, err := c.Batch(ctx, service.BatchRequest{
		Sets:      []service.WorkloadSet{{Name: "lint", Workload: wl}},
		Analyzers: []string{"cascade"},
	}); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	h, _, err := c.OpenSession(ctx, service.SessionRequest{Workload: wl})
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	task := service.SporadicTask(edf.Task{Name: "a", WCET: 1, Deadline: 50, Period: 100})
	if _, err := h.Propose(ctx, service.ProposeRequest{Task: task}); err != nil {
		return fmt.Errorf("propose: %w", err)
	}
	if _, err := h.Commit(ctx); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if _, err := h.Propose(ctx, service.ProposeRequest{Task: task}); err != nil {
		return fmt.Errorf("re-propose: %w", err)
	}
	if _, err := h.Rollback(ctx); err != nil {
		return fmt.Errorf("rollback: %w", err)
	}
	if err := h.Close(ctx); err != nil {
		return fmt.Errorf("close session: %w", err)
	}
	// One placement per replica: partition requests are fingerprint-sticky,
	// so distinct workloads are needed to touch every replica's
	// edfd_partition_ counters. More variants than replicas makes full
	// coverage near-certain on the two-replica default.
	procs := []edf.Processor{{Name: "p0"}, {Name: "p1", Speed: 2}}
	for i := range 8 {
		_, _, err := c.Partition(ctx, service.PartitionRequest{
			Name: fmt.Sprintf("lint-%d", i),
			Workload: edf.PartitionedWorkload(procs, []edf.PartitionedTask{
				{Task: edf.Task{Name: "a", WCET: 6, Deadline: 10 + int64(i), Period: 10 + int64(i)}},
				{Task: edf.Task{Name: "b", WCET: 6, Deadline: 10, Period: 10}},
			}),
		})
		if err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// lintPage validates one exposition page: parseable, structurally sound
// (ValidateExposition), and every family named under the daemon prefix
// contract. Returns the family and sample counts for the pass banner.
func lintPage(daemon, page string) (families, samples int, err error) {
	if err := obs.ValidateExposition(strings.NewReader(page)); err != nil {
		return 0, 0, err
	}
	ss, types, err := obs.ParseExpositionTyped(strings.NewReader(page))
	if err != nil {
		return 0, 0, err
	}
	if len(ss) == 0 {
		return 0, 0, fmt.Errorf("page has no samples")
	}
	for name := range types {
		if !strings.HasPrefix(name, "edfd_") && !strings.HasPrefix(name, "edfproxy_") {
			return 0, 0, fmt.Errorf("family %q lacks the edfd_/edfproxy_ prefix", name)
		}
	}
	// Fast-path observability contract: every page must export the
	// bounded-denominator promotion counter — replicas natively, the
	// proxy as a fleet sum next to its replica-labeled samples.
	if _, ok := types["edfd_arith_promotions_total"]; !ok {
		return 0, 0, fmt.Errorf("page lacks the edfd_arith_promotions_total family")
	}
	// Partitioned-placement observability contract: the partition counter
	// families must appear on every page — replicas natively, the proxy as
	// fleet sums — and the proxy must additionally export its own routing
	// counter for the endpoint.
	for _, fam := range []string{
		"edfd_partition_requests_total",
		"edfd_partition_feasible_total",
		"edfd_partition_infeasible_total",
		"edfd_partition_bin_checks_total",
		"edfd_partition_bin_cache_hits_total",
		"edfd_partition_gate_rejections_total",
	} {
		if _, ok := types[fam]; !ok {
			return 0, 0, fmt.Errorf("page lacks the %s family", fam)
		}
	}
	if daemon == "edfproxy" {
		if _, ok := types["edfproxy_partition_routed_total"]; !ok {
			return 0, 0, fmt.Errorf("proxy page lacks the edfproxy_partition_routed_total family")
		}
	}
	// The proxy page must also carry fleet aggregation: replica-labeled
	// samples next to their sums.
	if daemon == "edfproxy" {
		labeled := 0
		for _, s := range ss {
			if s.Label("replica") != "" {
				labeled++
			}
		}
		if labeled == 0 {
			return 0, 0, fmt.Errorf("proxy page has no replica-labeled samples")
		}
	}
	return len(types), len(ss), nil
}

// --- process plumbing (mirrors cmd/edfsmoke) ---

// daemon is one child process with its parsed listen address.
type daemon struct {
	name string
	cmd  *exec.Cmd
	addr string
}

// fleet tracks every daemon for teardown.
type fleet struct{ daemons []*daemon }

func (f *fleet) stopAll() {
	for _, d := range f.daemons {
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Wait()
	}
}

// start launches a daemon and parses "<name>: listening on <addr>" from
// its stdout; stderr passes through for diagnosability.
func (f *fleet) start(ctx context.Context, name, bin string, args ...string) (*daemon, error) {
	d := &daemon{name: name}
	d.cmd = exec.CommandContext(ctx, bin, args...)
	d.cmd.Stderr = os.Stderr
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	f.daemons = append(f.daemons, d)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), name+": listening on "); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			d.addr, _, _ = strings.Cut(rest, " ")
			return d, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s startup: %w", name, err)
	}
	return nil, fmt.Errorf("%s exited before announcing its address", name)
}

// buildTool compiles ./cmd/<name> into dir.
func buildTool(ctx context.Context, dir, name string) (string, error) {
	bin := filepath.Join(dir, name)
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building %s: %v\n%s", name, err, out)
	}
	return bin, nil
}

// waitHealthy polls /healthz until the endpoint answers.
func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("daemon never became healthy: %w", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
