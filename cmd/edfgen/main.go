// Command edfgen generates random task sets with the paper's workload
// model (UUniFast utilizations, uniform or log-uniform periods, average
// deadline gap) and writes them as JSON.
//
// Usage:
//
//	edfgen -n 20 -u 0.95 -gap 0.3 -tmin 1000 -tmax 100000 [-log] [-seed 1]
//	       [-count 1] [-o out.json]
//
// With -count > 1 the sets are written to out_001.json, out_002.json, ...
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	edf "repro"
)

func main() {
	var (
		n     = flag.Int("n", 10, "number of tasks")
		u     = flag.Float64("u", 0.9, "target utilization in (0,1]")
		gap   = flag.Float64("gap", 0.2, "average relative deadline gap (T-D)/T in [0,0.5]")
		tmin  = flag.Int64("tmin", 1000, "minimum period")
		tmax  = flag.Int64("tmax", 100000, "maximum period")
		logU  = flag.Bool("log", false, "draw periods log-uniformly")
		seed  = flag.Int64("seed", 1, "random seed")
		count = flag.Int("count", 1, "number of task sets")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cfg := edf.GenConfig{
		N: *n, Utilization: *u,
		PeriodMin: *tmin, PeriodMax: *tmax,
		LogUniformPeriods: *logU,
		GapMean:           *gap,
	}
	for i := range *count {
		ts, err := edf.Generate(cfg, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edfgen:", err)
			os.Exit(2)
		}
		name := fmt.Sprintf("random-%d", i+1)
		switch {
		case *out == "":
			if err := ts.WriteJSON(os.Stdout, name); err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(1)
			}
		case *count == 1:
			if err := ts.SaveFile(*out, name); err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(1)
			}
		default:
			path := fmt.Sprintf("%s_%03d.json", trimJSON(*out), i+1)
			if err := ts.SaveFile(path, name); err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(1)
			}
		}
	}
}

func trimJSON(p string) string {
	const ext = ".json"
	if len(p) > len(ext) && p[len(p)-len(ext):] == ext {
		return p[:len(p)-len(ext)]
	}
	return p
}
