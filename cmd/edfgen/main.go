// Command edfgen generates random task sets with the paper's workload
// model (UUniFast utilizations, uniform or log-uniform periods, average
// deadline gap) and writes them as JSON.
//
// Usage:
//
//	edfgen -n 20 -u 0.95 -gap 0.3 -tmin 1000 -tmax 100000 [-log] [-seed 1]
//	       [-count 1] [-o out.json] [-events] [-burst K] [-spacing S]
//
// With -count > 1 the sets are written to out_001.json, out_002.json, ...
//
// -events emits a Gresser event-stream workload ({"model": "events",
// "tasks": [...]}) instead of a sporadic task set: each generated task
// becomes an event-driven task whose stream is strictly periodic, or — with
// -burst K > 1 — a periodically repeating burst of K events spaced by
// -spacing (default: a quarter period divided by the burst size). Burst
// tasks keep the target utilization by splitting the WCET across the burst.
// The output is the workload schema the edfd service's /v1/analyze and
// /v1/batch endpoints accept, and edffeas -events reads it directly.
//
// -churn emits a session-churn scenario instead of a plain set: a seed
// workload (generated with the flags above) plus -ops
// propose/commit/rollback steps, the replayable input behind `make
// bench-session` and the smoke harness's session phase. It composes with
// -events for event-stream scenarios.
//
// -spread D is shorthand for the denominator-stress shape the bounded
// arithmetic fast path is benchmarked on: periods drawn log-uniformly
// across D decades starting at -tmin. It implies -log and overrides
// -tmax with tmin*10^D, and composes with -events and -churn.
//
// -processors m emits a partitioned multiprocessor workload ({"model":
// "partitioned", "processors": [...], "tasks": [...]}) for the edfd
// service's /v1/partition endpoint: m generator draws of -n tasks each
// at per-processor utilization -u, so the set totals about m*u and a
// placement usually exists. -speeds gives comma-separated processor
// speeds (default all unit), and -pin P pins that fraction of tasks to
// a random processor via an affinity set. Incompatible with -events and
// -churn.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	edf "repro"
	"repro/internal/service"
)

func main() {
	var (
		n       = flag.Int("n", 10, "number of tasks")
		u       = flag.Float64("u", 0.9, "target utilization in (0,1]")
		gap     = flag.Float64("gap", 0.2, "average relative deadline gap (T-D)/T in [0,0.5]")
		tmin    = flag.Int64("tmin", 1000, "minimum period")
		tmax    = flag.Int64("tmax", 100000, "maximum period")
		logU    = flag.Bool("log", false, "draw periods log-uniformly")
		seed    = flag.Int64("seed", 1, "random seed")
		count   = flag.Int("count", 1, "number of task sets")
		out     = flag.String("o", "", "output file (default stdout)")
		events  = flag.Bool("events", false, "emit a Gresser event-stream workload instead of a sporadic set")
		burst   = flag.Int("burst", 1, "events per burst in -events mode (1 = strictly periodic streams)")
		spacing = flag.Int64("spacing", 0, "burst event spacing in -events mode (0 = period/(4*burst))")
		doChurn = flag.Bool("churn", false, "emit a session-churn scenario (seed workload + propose/commit/rollback ops)")
		ops     = flag.Int("ops", 2000, "ops per scenario in -churn mode")
		spread  = flag.Int("spread", 0, "spread periods log-uniformly across this many decades above -tmin (implies -log, overrides -tmax)")
		procs   = flag.Int("processors", 0, "emit a partitioned workload over this many processors (-u is per-processor)")
		speeds  = flag.String("speeds", "", "comma-separated processor speeds in -processors mode (default all 1)")
		pin     = flag.Float64("pin", 0, "fraction of tasks pinned to a random processor in -processors mode")
	)
	flag.Parse()

	if *burst < 1 {
		fmt.Fprintln(os.Stderr, "edfgen: -burst must be at least 1")
		os.Exit(2)
	}
	if *spread > 0 {
		scale := int64(1)
		for range *spread {
			if scale > math.MaxInt64/10 || *tmin > math.MaxInt64/(scale*10) {
				fmt.Fprintf(os.Stderr, "edfgen: -spread %d overflows the period range above -tmin %d\n", *spread, *tmin)
				os.Exit(2)
			}
			scale *= 10
		}
		*tmax = *tmin * scale
		*logU = true
	} else if *spread < 0 {
		fmt.Fprintln(os.Stderr, "edfgen: -spread must be non-negative")
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	cfg := edf.GenConfig{
		N: *n, Utilization: *u,
		PeriodMin: *tmin, PeriodMax: *tmax,
		LogUniformPeriods: *logU,
		GapMean:           *gap,
	}
	if *procs > 0 {
		if *events || *doChurn {
			fmt.Fprintln(os.Stderr, "edfgen: -processors is incompatible with -events and -churn")
			os.Exit(2)
		}
		platform, err := parsePlatform(*procs, *speeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edfgen:", err)
			os.Exit(2)
		}
		for i := range *count {
			wl, err := generatePartitioned(platform, cfg, *pin, rng)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(2)
			}
			path := *out
			if path != "" && *count > 1 {
				path = fmt.Sprintf("%s_%03d.json", trimJSON(*out), i+1)
			}
			ws := service.WorkloadSet{Name: fmt.Sprintf("partitioned-%d", i+1), Workload: wl}
			if err := emitJSON(path, ws); err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *doChurn {
		ccfg := edf.ChurnConfig{
			SeedTasks: *n, Ops: *ops, Events: *events,
			Utilization: *u, PeriodMin: *tmin, PeriodMax: *tmax,
			LogUniformPeriods: *logU, GapMean: *gap,
		}
		for i := range *count {
			sc, err := edf.GenerateChurn(fmt.Sprintf("churn-%d", i+1), ccfg, rng)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(2)
			}
			path := *out
			if path != "" && *count > 1 {
				path = fmt.Sprintf("%s_%03d.json", trimJSON(*out), i+1)
			}
			if err := emitChurn(path, sc); err != nil {
				fmt.Fprintln(os.Stderr, "edfgen:", err)
				os.Exit(1)
			}
		}
		return
	}
	for i := range *count {
		ts, err := edf.Generate(cfg, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edfgen:", err)
			os.Exit(2)
		}
		name := fmt.Sprintf("random-%d", i+1)
		path := *out
		if path != "" && *count > 1 {
			path = fmt.Sprintf("%s_%03d.json", trimJSON(*out), i+1)
		}
		if err := emit(path, name, ts, *events, *burst, *spacing); err != nil {
			fmt.Fprintln(os.Stderr, "edfgen:", err)
			os.Exit(1)
		}
	}
}

// emitChurn writes one scenario to path (stdout when empty).
func emitChurn(path string, sc edf.ChurnScenario) error {
	if path == "" {
		return sc.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emit writes one set to path (stdout when empty), as a sporadic task set
// or an event-stream workload.
func emit(path, name string, ts edf.TaskSet, events bool, burst int, spacing int64) error {
	if !events {
		if path == "" {
			return ts.WriteJSON(os.Stdout, name)
		}
		return ts.SaveFile(path, name)
	}
	ws := service.WorkloadSet{Name: name, Workload: edf.EventWorkload(eventTasks(ts, burst, spacing))}
	return emitJSON(path, ws)
}

// emitJSON writes one JSON value to path (stdout when empty).
func emitJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// parsePlatform builds the processor list for -processors mode: m unit
// processors, or the speeds given as a comma-separated list (which must
// then have exactly m entries).
func parsePlatform(m int, speeds string) ([]edf.Processor, error) {
	procs := make([]edf.Processor, m)
	for i := range procs {
		procs[i] = edf.Processor{Name: fmt.Sprintf("p%d", i), Speed: 1}
	}
	if speeds == "" {
		return procs, nil
	}
	parts := strings.Split(speeds, ",")
	if len(parts) != m {
		return nil, fmt.Errorf("-speeds lists %d speeds for %d processors", len(parts), m)
	}
	for i, p := range parts {
		s, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || s < 1 {
			return nil, fmt.Errorf("-speeds entry %q: want a positive integer", p)
		}
		procs[i].Speed = s
	}
	return procs, nil
}

// generatePartitioned draws one task set per processor at the generator's
// per-processor utilization target and merges them into one partitioned
// workload. With pin > 0, that fraction of tasks is given a singleton
// affinity to a uniformly random processor — a stress knob for the
// placement engine, not a feasibility guarantee.
func generatePartitioned(procs []edf.Processor, cfg edf.GenConfig, pin float64, rng *rand.Rand) (edf.Workload, error) {
	var tasks []edf.PartitionedTask
	for pi := range procs {
		ts, err := edf.Generate(cfg, rng)
		if err != nil {
			return edf.Workload{}, err
		}
		for ti, t := range ts {
			t.Name = fmt.Sprintf("p%d-t%d", pi, ti)
			pt := edf.PartitionedTask{Task: t}
			if pin > 0 && rng.Float64() < pin {
				pt.Affinity = []int{rng.Intn(len(procs))}
			}
			tasks = append(tasks, pt)
		}
	}
	return edf.PartitionedWorkload(procs, tasks), nil
}

// eventTasks converts generated sporadic tasks to event-driven tasks.
// Periodic streams keep (C, D, T) verbatim. Bursts split the WCET across
// K events repeating every period, rounding the per-event demand down so
// the workload's utilization never exceeds the generator's target; a task
// whose WCET is smaller than the burst size cannot be split (every event
// shares one integer WCET) and keeps a periodic stream instead.
func eventTasks(ts edf.TaskSet, burst int, spacing int64) []edf.EventTask {
	out := make([]edf.EventTask, len(ts))
	for i, t := range ts {
		et := edf.EventTask{Name: t.Name, WCET: t.WCET, Deadline: t.Deadline}
		if burst == 1 || t.WCET < int64(burst) {
			et.Stream = edf.PeriodicStream(t.Period)
		} else {
			s := spacing
			if s <= 0 {
				s = max(t.Period/int64(4*burst), 1)
			}
			et.WCET = t.WCET / int64(burst)
			et.Stream = edf.BurstStream(t.Period, burst, s)
		}
		out[i] = et
	}
	return out
}

func trimJSON(p string) string {
	const ext = ".json"
	if len(p) > len(ext) && p[len(p)-len(ext):] == ext {
		return p[:len(p)-len(ext)]
	}
	return p
}
