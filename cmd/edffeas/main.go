// Command edffeas analyzes the EDF feasibility of a task set.
//
// Usage:
//
//	edffeas -set tasks.json [-test all|exact|sufficient|<name>,<name>,...]
//	        [-level N] [-float] [-example name] [-wcrt] [-slack]
//	        [-curve I] [-events stream.json] [-list]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The task set file is JSON: {"tasks":[{"wcet":2,"deadline":8,"period":10}, ...]}
// or a bare array of tasks. Alternatively -example selects one of the
// literature sets (burns, mashin, gap, gresser1, gresser2).
//
// -test accepts any analyzer registered in the analysis engine (see -list),
// a comma-separated list of them, a parameterized "superpos(L)", or the
// group keywords all, exact and sufficient. -wcrt adds Spuri worst-case
// response times, -slack per-task WCET margins. -curve I dumps the exact
// dbf and the Devi/SuperPos(1) approximation up to interval I as CSV (the
// content of Figures 2-3 of the paper). -events analyzes a Gresser
// event-stream task set instead of a sporadic one, with every analyzer of
// the selection that supports the event model.
//
// -json emits the results as the same JSON schema the edfd service's
// POST /v1/batch returns, so scripts can consume CLI and server output
// interchangeably. It covers -events too: the jobs then carry "model":
// "events", and analyzers without event support report a per-job error,
// exactly as the service's batch endpoint would.
//
// -cpuprofile and -memprofile write pprof profiles of the run (CPU
// sampled across the analysis, heap captured after it), so hot-path
// regressions can be diagnosed with `go tool pprof` without editing
// code. Both work with every mode, including -json and -events.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	edf "repro"
	"repro/internal/service"
)

func main() {
	// All work happens in run so deferred cleanups (profile writers) run
	// before the process exits with the verdict code.
	os.Exit(run())
}

func run() int {
	var (
		setPath = flag.String("set", "", "path to a task set JSON file")
		example = flag.String("example", "", "literature set name (burns, mashin, gap, gresser1, gresser2)")
		test    = flag.String("test", "all", "analyzers to run: registered names, comma-separated, or all|exact|sufficient")
		level   = flag.Int64("level", 3, "superposition level applied to a bare \"superpos\" in -test")
		useF64  = flag.Bool("float", false, "use float64 accumulators instead of exact rationals")
		wcrt    = flag.Bool("wcrt", false, "also report per-task worst-case response times (Spuri)")
		slack   = flag.Bool("slack", false, "also report per-task WCET slack (sensitivity analysis)")
		curve   = flag.Int64("curve", 0, "dump dbf and the SuperPos(1)/Devi approximation up to this interval as CSV (Figures 2-3 of the paper) and exit")
		events  = flag.String("events", "", "path to an event-stream task set JSON file (Gresser model)")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
		asJSON  = flag.Bool("json", false, "emit results as the edfd service's batch JSON schema")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the analysis to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (after the analysis) to this file")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		return 2
	}
	defer stopProfiles()

	if *list {
		listAnalyzers()
		return 0
	}
	if *asJSON && (*curve > 0 || *wcrt || *slack) {
		fmt.Fprintln(os.Stderr, "edffeas: -json covers the analyzer results only (not -curve/-wcrt/-slack)")
		return 2
	}

	analyzers, err := selectAnalyzers(*test, *level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		return 2
	}

	opt := edf.Options{}
	if *useF64 {
		opt.Arithmetic = edf.ArithFloat64
	}

	if *events != "" {
		code, err := analyzeEvents(*events, analyzers, opt, *asJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edffeas:", err)
			return 2
		}
		return code
	}

	ts, name, err := loadSet(*setPath, *example)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		return 2
	}
	if err := ts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		return 2
	}

	if *curve > 0 {
		if err := dumpCurve(ts, *curve); err != nil {
			fmt.Fprintln(os.Stderr, "edffeas:", err)
			return 2
		}
		return 0
	}

	if !*asJSON {
		fmt.Printf("task set %q: %d tasks, U = %.4f\n", name, len(ts), edf.Utilization(ts))
		if b, kind, ok := edf.BestBound(ts); ok {
			fmt.Printf("feasibility bound: %d (%s)\n", b, kind)
		}
	}

	results := edf.AnalyzeBatch(context.Background(),
		[]edf.TaskSet{ts}, analyzers, opt, 0)

	if *asJSON {
		if err := emitJSON(name, results); err != nil {
			fmt.Fprintln(os.Stderr, "edffeas:", err)
			return 2
		}
		return infeasibleCode(results)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "test\tkind\tverdict\tintervals\trevisions\tfail@\twall")
	for _, r := range results {
		failAt := "-"
		if r.Result.FailureInterval > 0 {
			failAt = fmt.Sprint(r.Result.FailureInterval)
		}
		info := r.Analyzer.Info()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\t%s\n",
			info.Label, info.Kind, r.Result.Verdict,
			r.Result.Iterations, r.Result.Revisions, failAt, r.Wall)
	}
	tw.Flush()

	if *wcrt || *slack {
		reportPerTask(ts, *wcrt, *slack)
	}

	return infeasibleCode(results)
}

// startProfiles arms the requested pprof profiles and returns the cleanup
// that stops the CPU profile and writes the heap profile.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edffeas: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // surface live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "edffeas: memprofile:", err)
			}
		}
	}, nil
}

// infeasibleCode mirrors the strongest verdict in the exit code:
// 0 feasible, 1 infeasible.
func infeasibleCode(results []edf.BatchResult) int {
	for _, r := range results {
		if r.Result.Verdict == edf.Infeasible {
			return 1
		}
	}
	return 0
}

// emitJSON prints the results in the edfd service's batch response
// schema (one job per analyzer, set-major order).
func emitJSON(name string, results []edf.BatchResult) error {
	out := service.BatchResponse{Results: make([]service.BatchJobJSON, len(results))}
	for i, r := range results {
		out.Results[i] = service.BatchJobJSON{
			SetIndex: r.SetIndex,
			SetName:  name,
			Model:    string(r.Workload.Kind()),
			Analyzer: r.Analyzer.Info().Name,
			Result:   service.NewResultJSON(r.Result),
			WallNS:   r.Wall.Nanoseconds(),
		}
		if r.Err != nil {
			out.Results[i].Err = r.Err.Error()
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -test spec, applying -level to bare
// "superpos" mentions so the historical flag keeps working.
func selectAnalyzers(spec string, level int64) ([]edf.Analyzer, error) {
	fields := strings.Split(spec, ",")
	for i, f := range fields {
		if strings.EqualFold(strings.TrimSpace(f), "superpos") {
			fields[i] = fmt.Sprintf("superpos(%d)", level)
		}
	}
	return edf.ParseAnalyzers(strings.Join(fields, ","))
}

// listAnalyzers prints the registry.
func listAnalyzers() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tlabel\tkind\tblocking\tevents")
	for _, a := range edf.Analyzers() {
		info := a.Info()
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%v\n",
			info.Name, info.Label, info.Kind, info.Blocking, info.Events)
	}
	tw.Flush()
}

// reportPerTask prints the optional WCRT / slack table.
func reportPerTask(ts edf.TaskSet, wantWCRT, wantSlack bool) {
	var wcrts, slacks []int64
	if wantWCRT {
		if r, ok := edf.WCRTAll(ts, edf.ResponseOptions{}); ok {
			wcrts = r
		} else {
			fmt.Println("worst-case response times: not available (U > 1 or cap hit)")
		}
	}
	if wantSlack {
		if s, err := edf.WCETSlack(ts, nil); err == nil {
			slacks = s
		} else {
			fmt.Println("WCET slack: not available:", err)
		}
	}
	if wcrts == nil && slacks == nil {
		return
	}
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "task\tC\tD\tT")
	if wcrts != nil {
		fmt.Fprint(tw, "\tWCRT")
	}
	if slacks != nil {
		fmt.Fprint(tw, "\tC-slack")
	}
	fmt.Fprintln(tw)
	for i, task := range ts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d", task.Name, task.WCET, task.Deadline, task.Period)
		if wcrts != nil {
			fmt.Fprintf(tw, "\t%d", wcrts[i])
		}
		if slacks != nil {
			fmt.Fprintf(tw, "\t%d", slacks[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// dumpCurve prints interval, exact dbf and the SuperPos(1) approximation
// (Devi's demand line, Figures 2 and 3 of the paper) at every demand step
// up to the given interval, as CSV for plotting.
func dumpCurve(ts edf.TaskSet, upTo int64) error {
	fmt.Println("interval,dbf,devi_approx")
	prev := int64(-1)
	emit := func(I int64) {
		if I == prev || I > upTo {
			return
		}
		prev = I
		approx := 0.0
		for _, t := range ts {
			if I >= t.Deadline {
				approx += float64(t.WCET) + float64(I-t.Deadline)*t.UtilizationFloat()
			}
		}
		fmt.Printf("%d,%d,%.4f\n", I, edf.Dbf(ts, I), approx)
	}
	emit(0)
	// Walk every job deadline <= upTo in ascending order.
	for {
		next := int64(-1)
		for _, t := range ts {
			d := t.Deadline
			if prev >= d {
				k := (prev-d)/t.Period + 1
				d = t.Deadline + k*t.Period
			}
			if d <= upTo && (next == -1 || d < next) {
				next = d
			}
		}
		if next == -1 {
			break
		}
		emit(next)
	}
	emit(upTo)
	return nil
}

// analyzeEvents runs the selection on an event-stream task set file
// through the workload batch runner and returns the process exit code.
// The table view skips analyzers without event support; the JSON view
// reports them as per-job errors, exactly as the service's batch endpoint
// would.
func analyzeEvents(path string, analyzers []edf.Analyzer, opt edf.Options, asJSON bool) (int, error) {
	tasks, name, err := edf.LoadEventTasks(path)
	if err != nil {
		return 0, err
	}
	results := edf.AnalyzeWorkloads(context.Background(),
		[]edf.Workload{edf.EventWorkload(tasks)}, analyzers, opt, 0)
	if asJSON {
		if err := emitJSON(name, results); err != nil {
			return 0, err
		}
		return infeasibleCode(results), nil
	}
	fmt.Printf("event task set %q: %d tasks\n", name, len(tasks))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "test\tverdict\tintervals\trevisions")
	ran := 0
	for _, r := range results {
		if r.Err != nil {
			continue // no event-stream support
		}
		ran++
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n",
			r.Analyzer.Info().Label, r.Result.Verdict, r.Result.Iterations, r.Result.Revisions)
	}
	if ran == 0 {
		return 0, fmt.Errorf("none of the selected analyzers supports event streams")
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	return infeasibleCode(results), nil
}

func loadSet(path, example string) (edf.TaskSet, string, error) {
	switch {
	case path != "" && example != "":
		return nil, "", fmt.Errorf("use either -set or -example, not both")
	case path != "":
		ts, name, err := edf.LoadTaskSet(path)
		if name == "" {
			name = path
		}
		return ts, name, err
	case example != "":
		ex, ok := edf.ExampleByName(example)
		if !ok {
			return nil, "", fmt.Errorf("unknown example %q", example)
		}
		return ex.Set, ex.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -set or -example is required")
	}
}
