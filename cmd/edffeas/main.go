// Command edffeas analyzes the EDF feasibility of a task set.
//
// Usage:
//
//	edffeas -set tasks.json [-test all|devi|liu|superpos|pd|qpa|dynamic|allapprox]
//	        [-level N] [-float] [-example name] [-wcrt] [-slack]
//	        [-curve I] [-events stream.json]
//
// The task set file is JSON: {"tasks":[{"wcet":2,"deadline":8,"period":10}, ...]}
// or a bare array of tasks. Alternatively -example selects one of the
// literature sets (burns, mashin, gap, gresser1, gresser2).
//
// -wcrt adds Spuri worst-case response times, -slack per-task WCET margins.
// -curve I dumps the exact dbf and the Devi/SuperPos(1) approximation up to
// interval I as CSV (the content of Figures 2-3 of the paper). -events
// analyzes a Gresser event-stream task set instead of a sporadic one.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	edf "repro"
)

func main() {
	var (
		setPath = flag.String("set", "", "path to a task set JSON file")
		example = flag.String("example", "", "literature set name (burns, mashin, gap, gresser1, gresser2)")
		test    = flag.String("test", "all", "test to run: all|liu|devi|superpos|pd|qpa|dynamic|allapprox")
		level   = flag.Int64("level", 3, "superposition level for -test superpos")
		useF64  = flag.Bool("float", false, "use float64 accumulators instead of exact rationals")
		wcrt    = flag.Bool("wcrt", false, "also report per-task worst-case response times (Spuri)")
		slack   = flag.Bool("slack", false, "also report per-task WCET slack (sensitivity analysis)")
		curve   = flag.Int64("curve", 0, "dump dbf and the SuperPos(1)/Devi approximation up to this interval as CSV (Figures 2-3 of the paper) and exit")
		events  = flag.String("events", "", "path to an event-stream task set JSON file (Gresser model)")
	)
	flag.Parse()

	opt := edf.Options{}
	if *useF64 {
		opt.Arithmetic = edf.ArithFloat64
	}

	if *events != "" {
		if err := analyzeEvents(*events, *level, opt); err != nil {
			fmt.Fprintln(os.Stderr, "edffeas:", err)
			os.Exit(2)
		}
		return
	}

	ts, name, err := loadSet(*setPath, *example)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		os.Exit(2)
	}
	if err := ts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "edffeas:", err)
		os.Exit(2)
	}

	if *curve > 0 {
		if err := dumpCurve(ts, *curve); err != nil {
			fmt.Fprintln(os.Stderr, "edffeas:", err)
			os.Exit(2)
		}
		return
	}

	fmt.Printf("task set %q: %d tasks, U = %.4f\n", name, len(ts), edf.Utilization(ts))
	if b, kind, ok := edf.BestBound(ts); ok {
		fmt.Printf("feasibility bound: %d (%s)\n", b, kind)
	}

	type row struct {
		name string
		res  edf.Result
	}
	var rows []row
	add := func(n string, r edf.Result) { rows = append(rows, row{n, r}) }
	switch *test {
	case "all":
		add("liu-layland", edf.LiuLayland(ts))
		add("devi", edf.Devi(ts))
		add(fmt.Sprintf("superpos(%d)", *level), edf.SuperPos(ts, *level, opt))
		add("dynamic", edf.DynamicError(ts, opt))
		add("allapprox", edf.AllApprox(ts, opt))
		add("qpa", edf.QPA(ts, opt))
		add("processor-demand", edf.ProcessorDemand(ts, opt))
	case "liu":
		add("liu-layland", edf.LiuLayland(ts))
	case "devi":
		add("devi", edf.Devi(ts))
	case "superpos":
		add(fmt.Sprintf("superpos(%d)", *level), edf.SuperPos(ts, *level, opt))
	case "pd":
		add("processor-demand", edf.ProcessorDemand(ts, opt))
	case "qpa":
		add("qpa", edf.QPA(ts, opt))
	case "dynamic":
		add("dynamic", edf.DynamicError(ts, opt))
	case "allapprox":
		add("allapprox", edf.AllApprox(ts, opt))
	default:
		fmt.Fprintf(os.Stderr, "edffeas: unknown test %q\n", *test)
		os.Exit(2)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "test\tverdict\tintervals\trevisions\tfail@")
	for _, r := range rows {
		failAt := "-"
		if r.res.FailureInterval > 0 {
			failAt = fmt.Sprint(r.res.FailureInterval)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\n",
			r.name, r.res.Verdict, r.res.Iterations, r.res.Revisions, failAt)
	}
	tw.Flush()

	if *wcrt || *slack {
		var wcrts, slacks []int64
		if *wcrt {
			if r, ok := edf.WCRTAll(ts, edf.ResponseOptions{}); ok {
				wcrts = r
			} else {
				fmt.Println("worst-case response times: not available (U > 1 or cap hit)")
			}
		}
		if *slack {
			if s, err := edf.WCETSlack(ts, nil); err == nil {
				slacks = s
			} else {
				fmt.Println("WCET slack: not available:", err)
			}
		}
		if wcrts != nil || slacks != nil {
			fmt.Println()
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprint(tw, "task\tC\tD\tT")
			if wcrts != nil {
				fmt.Fprint(tw, "\tWCRT")
			}
			if slacks != nil {
				fmt.Fprint(tw, "\tC-slack")
			}
			fmt.Fprintln(tw)
			for i, task := range ts {
				fmt.Fprintf(tw, "%s\t%d\t%d\t%d", task.Name, task.WCET, task.Deadline, task.Period)
				if wcrts != nil {
					fmt.Fprintf(tw, "\t%d", wcrts[i])
				}
				if slacks != nil {
					fmt.Fprintf(tw, "\t%d", slacks[i])
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
		}
	}

	// Exit code mirrors the strongest verdict: 0 feasible, 1 infeasible,
	// 3 undecided.
	for _, r := range rows {
		if r.res.Verdict == edf.Infeasible {
			os.Exit(1)
		}
	}
}

// dumpCurve prints interval, exact dbf and the SuperPos(1) approximation
// (Devi's demand line, Figures 2 and 3 of the paper) at every demand step
// up to the given interval, as CSV for plotting.
func dumpCurve(ts edf.TaskSet, upTo int64) error {
	fmt.Println("interval,dbf,devi_approx")
	prev := int64(-1)
	emit := func(I int64) {
		if I == prev || I > upTo {
			return
		}
		prev = I
		approx := 0.0
		for _, t := range ts {
			if I >= t.Deadline {
				approx += float64(t.WCET) + float64(I-t.Deadline)*t.UtilizationFloat()
			}
		}
		fmt.Printf("%d,%d,%.4f\n", I, edf.Dbf(ts, I), approx)
	}
	emit(0)
	// Walk every job deadline <= upTo in ascending order.
	for {
		next := int64(-1)
		for _, t := range ts {
			d := t.Deadline
			if prev >= d {
				k := (prev-d)/t.Period + 1
				d = t.Deadline + k*t.Period
			}
			if d <= upTo && (next == -1 || d < next) {
				next = d
			}
		}
		if next == -1 {
			break
		}
		emit(next)
	}
	emit(upTo)
	return nil
}

// analyzeEvents runs the iterative tests on an event-stream task set file.
func analyzeEvents(path string, level int64, opt edf.Options) error {
	tasks, name, err := edf.LoadEventTasks(path)
	if err != nil {
		return err
	}
	fmt.Printf("event task set %q: %d tasks\n", name, len(tasks))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "test\tverdict\tintervals\trevisions")
	for _, tc := range []struct {
		name string
		res  edf.Result
	}{
		{fmt.Sprintf("superpos(%d)", level), edf.EventSuperPos(tasks, level, opt)},
		{"dynamic", edf.EventDynamicError(tasks, opt)},
		{"allapprox", edf.EventAllApprox(tasks, opt)},
		{"processor-demand", edf.EventProcessorDemand(tasks, opt)},
		{"rtc-curves", edf.Result{Verdict: edf.RTCFeasibleEvents(tasks)}},
	} {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", tc.name, tc.res.Verdict, tc.res.Iterations, tc.res.Revisions)
	}
	return tw.Flush()
}

func loadSet(path, example string) (edf.TaskSet, string, error) {
	switch {
	case path != "" && example != "":
		return nil, "", fmt.Errorf("use either -set or -example, not both")
	case path != "":
		ts, name, err := edf.LoadTaskSet(path)
		if name == "" {
			name = path
		}
		return ts, name, err
	case example != "":
		ex, ok := edf.ExampleByName(example)
		if !ok {
			return nil, "", fmt.Errorf("unknown example %q", example)
		}
		return ex.Set, ex.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -set or -example is required")
	}
}
