// Package cmd_test builds and exercises the command line tools end to end.
package cmd_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// buildTool compiles one command into a temp dir and returns the binary
// path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(wd) // cmd/ -> repo root
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestEdffeasOnExamples(t *testing.T) {
	bin := buildTool(t, "edffeas")
	out, err := run(t, bin, "-example", "burns")
	if err != nil {
		t.Fatalf("edffeas: %v\n%s", err, out)
	}
	for _, want := range []string{"processor-demand", "allapprox", "feasible", "devi"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Unknown example must fail with a usage error.
	if _, err := run(t, bin, "-example", "bogus"); err == nil {
		t.Error("bogus example accepted")
	}
	// Missing input must fail.
	if _, err := run(t, bin); err == nil {
		t.Error("missing -set/-example accepted")
	}
}

// TestEdffeasJSONMatchesServiceSchema pins the -json output to the edfd
// batch response schema: it must unmarshal into the service wire types
// with every analyzer's verdict populated.
func TestEdffeasJSONMatchesServiceSchema(t *testing.T) {
	bin := buildTool(t, "edffeas")
	out, err := run(t, bin, "-example", "burns", "-test", "devi,allapprox,cascade", "-json")
	if err != nil {
		t.Fatalf("edffeas -json: %v\n%s", err, out)
	}
	var resp service.BatchResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("output is not the service batch schema: %v\n%s", err, out)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3\n%s", len(resp.Results), out)
	}
	for i, jr := range resp.Results {
		if jr.Result.Verdict == "" || jr.Analyzer == "" {
			t.Errorf("result %d incomplete: %+v", i, jr)
		}
		if jr.SetIndex != 0 || jr.SetName == "" {
			t.Errorf("result %d set identity: %+v", i, jr)
		}
	}
	// devi is sufficient-only on this set shape; the exact tests decide.
	if v := resp.Results[1].Result.Verdict; v != "feasible" && v != "infeasible" {
		t.Errorf("allapprox verdict %q is not definite", v)
	}
	// -json must refuse modes it does not cover.
	for _, extra := range []string{"-curve=100", "-wcrt", "-slack"} {
		if _, err := run(t, bin, "-example", "burns", "-json", extra); err == nil {
			t.Errorf("-json %s accepted", extra)
		}
	}
}

// TestEdfgenEventsThroughEdffeas generates an event-stream workload with
// edfgen -events and drives it through edffeas -events, both as a table
// and as the service batch JSON schema with "model": "events" jobs.
func TestEdfgenEventsThroughEdffeas(t *testing.T) {
	gen := buildTool(t, "edfgen")
	feas := buildTool(t, "edffeas")
	set := filepath.Join(t.TempDir(), "ev.json")
	out, err := run(t, gen, "-n", "8", "-u", "0.7", "-seed", "5", "-events", "-burst", "3", "-o", set)
	if err != nil {
		t.Fatalf("edfgen -events: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(set)
	if err != nil {
		t.Fatal(err)
	}
	// The file is the service workload schema: model next to tasks.
	var ws service.WorkloadSet
	if err := json.Unmarshal(raw, &ws); err != nil {
		t.Fatalf("generated file is not a workload set: %v\n%s", err, raw)
	}
	if ws.Workload.Kind() != "events" || ws.Workload.Len() != 8 {
		t.Fatalf("generated workload: model %s, %d tasks", ws.Workload.Kind(), ws.Workload.Len())
	}
	if err := ws.Workload.Validate(); err != nil {
		t.Fatalf("generated workload invalid: %v", err)
	}

	out, err = run(t, feas, "-events", set, "-test", "allapprox,pd")
	if err != nil {
		t.Fatalf("edffeas -events: %v\n%s", err, out)
	}
	if !strings.Contains(out, "feasible") || !strings.Contains(out, "processor-demand") {
		t.Errorf("event table output:\n%s", out)
	}

	out, err = run(t, feas, "-events", set, "-test", "allapprox,qpa", "-json")
	if err != nil {
		t.Fatalf("edffeas -events -json: %v\n%s", err, out)
	}
	var resp service.BatchResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("event -json is not the batch schema: %v\n%s", err, out)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2\n%s", len(resp.Results), out)
	}
	if jr := resp.Results[0]; jr.Model != "events" || jr.Err != "" || jr.Result.Verdict == "" {
		t.Errorf("allapprox event job: %+v", jr)
	}
	// qpa has no event support: the job must carry the typed error.
	if jr := resp.Results[1]; jr.Err == "" || !strings.Contains(jr.Err, "event-stream") {
		t.Errorf("qpa event job should report the capability error: %+v", jr)
	}
}

func TestEdffeasInfeasibleExitCode(t *testing.T) {
	bin := buildTool(t, "edffeas")
	set := filepath.Join(t.TempDir(), "bad.json")
	payload := `{"tasks":[
		{"wcet":3,"deadline":4,"period":10},
		{"wcet":4,"deadline":5,"period":10},
		{"wcet":3,"deadline":6,"period":10}]}`
	if err := os.WriteFile(set, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-set", set)
	if err == nil {
		t.Fatalf("expected exit code 1 for infeasible set\n%s", out)
	}
	if !strings.Contains(out, "infeasible") {
		t.Errorf("output missing verdict:\n%s", out)
	}
}

func TestEdfgenRoundTripsThroughEdffeas(t *testing.T) {
	gen := buildTool(t, "edfgen")
	feas := buildTool(t, "edffeas")
	set := filepath.Join(t.TempDir(), "gen.json")
	if out, err := run(t, gen, "-n", "12", "-u", "0.8", "-seed", "3", "-o", set); err != nil {
		t.Fatalf("edfgen: %v\n%s", err, out)
	}
	out, err := run(t, feas, "-set", set, "-test", "allapprox")
	if err != nil {
		t.Fatalf("edffeas on generated set: %v\n%s", err, out)
	}
	if !strings.Contains(out, "feasible") {
		t.Errorf("generated U=0.8 set not feasible?\n%s", out)
	}
}

// TestEdfgenSpreadFlag pins -spread: periods land log-uniformly inside
// [tmin, tmin*10^decades] and actually cover the range (the shape that
// stresses the bounded-denominator arithmetic), and the set still
// round-trips through edffeas.
func TestEdfgenSpreadFlag(t *testing.T) {
	gen := buildTool(t, "edfgen")
	feas := buildTool(t, "edffeas")
	set := filepath.Join(t.TempDir(), "spread.json")
	if out, err := run(t, gen, "-n", "30", "-u", "0.9", "-seed", "7", "-tmin", "1000", "-spread", "4", "-o", set); err != nil {
		t.Fatalf("edfgen -spread: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(set)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Tasks []struct {
			Period int64 `json:"period"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("generated file: %v\n%s", err, raw)
	}
	if len(parsed.Tasks) != 30 {
		t.Fatalf("got %d tasks, want 30", len(parsed.Tasks))
	}
	lo, hi := parsed.Tasks[0].Period, parsed.Tasks[0].Period
	for _, task := range parsed.Tasks {
		if task.Period < 1000 || task.Period > 10_000_000 {
			t.Fatalf("period %d outside [1e3, 1e7]", task.Period)
		}
		lo, hi = min(lo, task.Period), max(hi, task.Period)
	}
	// 30 log-uniform draws over 4 decades must span most of the range;
	// a uniform draw would almost surely leave the bottom decades empty.
	if lo >= 10_000 || hi <= 1_000_000 {
		t.Errorf("periods span only [%d, %d] — not a 4-decade spread", lo, hi)
	}
	if out, err := run(t, feas, "-set", set, "-test", "pd"); err != nil {
		t.Fatalf("edffeas on spread set: %v\n%s", err, out)
	}

	// The overriding shorthand must reject impossible ranges.
	if out, err := run(t, gen, "-spread", "19"); err == nil {
		t.Fatalf("-spread 19 should overflow:\n%s", out)
	} else if !strings.Contains(out, "overflow") {
		t.Errorf("overflow message missing:\n%s", out)
	}
}

func TestEdfexpTable1(t *testing.T) {
	bin := buildTool(t, "edfexp")
	out, err := run(t, bin, "-exp", "table1", "-quiet")
	if err != nil {
		t.Fatalf("edfexp: %v\n%s", err, out)
	}
	for _, want := range []string{"Burns", "FAILED", "Gresser1", "Proc. Dem."} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
	// CSV mode.
	out, err = run(t, bin, "-exp", "table1", "-quiet", "-csv")
	if err != nil {
		t.Fatalf("edfexp csv: %v\n%s", err, out)
	}
	if !strings.Contains(out, "name,tasks,utilization") {
		t.Errorf("csv header missing:\n%s", out)
	}
}

// TestBenchmergeGate pins the CI bench-regression gate: the first merge
// freezes the baseline, a within-threshold run passes, a slow run or an
// allocation on a 0-alloc baseline fails with exit status 2 naming the
// offender.
func TestBenchmergeGate(t *testing.T) {
	bin := buildTool(t, "benchmerge")
	out := filepath.Join(t.TempDir(), "BENCH.json")
	feed := func(t *testing.T, stdin string, args ...string) (string, error) {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-out", out}, args...)...)
		cmd.Stdin = strings.NewReader(stdin)
		b, err := cmd.CombinedOutput()
		return string(b), err
	}
	baseline := "BenchmarkHot-8  1000  100000 ns/op  0 B/op  0 allocs/op\n" +
		"BenchmarkWarm-8  500  200000 ns/op  64 B/op  4 allocs/op\n"
	if o, err := feed(t, baseline); err != nil {
		t.Fatalf("freezing baseline: %v\n%s", err, o)
	}

	// Within threshold (+10% on a 25% gate, allocs unchanged): pass.
	ok := "BenchmarkHot-8  1000  110000 ns/op  0 B/op  0 allocs/op\n" +
		"BenchmarkWarm-8  500  210000 ns/op  64 B/op  4 allocs/op\n"
	if o, err := feed(t, ok, "-gate", "25"); err != nil {
		t.Fatalf("within-threshold run failed the gate: %v\n%s", err, o)
	} else if !strings.Contains(o, "GATE PASSED") {
		t.Errorf("no pass banner:\n%s", o)
	}

	// +50% ns/op regression: fail with status 2, naming the benchmark.
	slow := "BenchmarkHot-8  1000  150000 ns/op  0 B/op  0 allocs/op\n" +
		"BenchmarkWarm-8  500  200000 ns/op  64 B/op  4 allocs/op\n"
	o, err := feed(t, slow, "-gate", "25")
	if err == nil {
		t.Fatalf("50%% regression passed the gate:\n%s", o)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("gate failure exit: %v", err)
	}
	if !strings.Contains(o, "BenchmarkHot") || !strings.Contains(o, "GATE FAILED") {
		t.Errorf("violation does not name the benchmark:\n%s", o)
	}

	// Any allocation on a 0-alloc baseline: fail even though ns/op is fine.
	leaky := "BenchmarkHot-8  1000  100000 ns/op  16 B/op  1 allocs/op\n" +
		"BenchmarkWarm-8  500  200000 ns/op  64 B/op  4 allocs/op\n"
	if o, err := feed(t, leaky, "-gate", "25"); err == nil {
		t.Fatalf("allocation on 0-alloc baseline passed the gate:\n%s", o)
	} else if !strings.Contains(o, "0-alloc baseline") {
		t.Errorf("alloc violation message:\n%s", o)
	}

	// A fractional allocation amortized below one op shows 0 allocs/op
	// but non-zero B/op: the 0-byte baseline must still catch it.
	amortized := "BenchmarkHot-8  1000  100000 ns/op  1 B/op  0 allocs/op\n" +
		"BenchmarkWarm-8  500  200000 ns/op  64 B/op  4 allocs/op\n"
	if o, err := feed(t, amortized, "-gate", "25"); err == nil {
		t.Fatalf("bytes on 0-byte baseline passed the gate:\n%s", o)
	} else if !strings.Contains(o, "0-byte baseline") {
		t.Errorf("byte violation message:\n%s", o)
	}

	// The gate must not have clobbered the frozen baseline.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Baseline struct {
			Benchmarks map[string]struct {
				NsPerOp float64 `json:"ns_per_op"`
			} `json:"benchmarks"`
		} `json:"baseline"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if got := f.Baseline.Benchmarks["BenchmarkHot"].NsPerOp; got != 100000 {
		t.Errorf("baseline drifted to %v ns/op", got)
	}
}

func TestEdfsimTraceAndVerdict(t *testing.T) {
	bin := buildTool(t, "edfsim")
	out, err := run(t, bin, "-example", "gap", "-horizon", "100000", "-trace")
	if err != nil {
		t.Fatalf("edfsim: %v\n%s", err, out)
	}
	for _, want := range []string{"no deadline miss", "timer_interrupt", "feasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("edfsim output missing %q:\n%s", want, out)
		}
	}
}
