// Command edfproxy routes edfd's HTTP/JSON API across a cluster of edfd
// replicas with a consistent-hash ring over content-addressed workload
// fingerprints, so identical workloads always land on the replica whose
// cache already holds their results.
//
// Usage:
//
//	edfproxy -replicas http://h1:8080,http://h2:8080 [-addr :8070]
//	         [-vnodes 128] [-health-interval 2s]
//
// Routing:
//
//	POST /v1/analyze     by workload fingerprint; idempotent, fails over
//	                     to the next ring node when a replica is down
//	POST /v1/batch       split per-fingerprint across replicas, per-job
//	                     results re-merged in deterministic set-major order
//	POST /v1/sessions    sticky: the creating replica owns the session;
//	/v1/sessions/{id}... later requests always go to the owner (503 naming
//	                     the owner when it is down — sessions are stateful)
//	GET  /v1/analyzers   any healthy replica (registries are identical)
//	GET  /healthz        proxy + per-replica health
//	GET  /metrics        replica counters summed + per-replica values +
//	                     edfproxy_* routing/failover counters
//
// A background checker probes every replica's /healthz each interval,
// ejecting failed replicas from the ring and re-admitting them when they
// recover; a transport error during proxying ejects immediately. Ring
// membership changes remap only ~1/N of the key space (virtual nodes),
// keeping the surviving replicas' caches warm.
//
// The proxy drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8070", "listen address")
		replicas = flag.String("replicas", "", "comma-separated edfd base URLs (required)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
		interval = flag.Duration("health-interval", cluster.DefaultHealthInterval, "replica /healthz probe interval")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	p, err := cluster.New(cluster.Config{
		Replicas:       urls,
		VirtualNodes:   *vnodes,
		HealthInterval: *interval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(2)
	}
	p.Start()
	defer p.Close()

	hs := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener resolves ":0" to a real port before the banner
	// prints, so scripts (make smoke-cluster) can parse the address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("edfproxy: listening on %s (%d replicas, %d vnodes, health every %s)\n",
			ln.Addr(), len(urls), *vnodes, *interval)
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("edfproxy: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "edfproxy: shutdown:", err)
		os.Exit(1)
	}
}
