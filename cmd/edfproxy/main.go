// Command edfproxy routes edfd's HTTP/JSON API across a cluster of edfd
// replicas with a consistent-hash ring over content-addressed workload
// fingerprints, so identical workloads always land on the replica whose
// cache already holds their results.
//
// Usage:
//
//	edfproxy -replicas http://h1:8080,http://h2:8080 [-addr :8070]
//	         [-vnodes 128] [-health-interval 2s]
//
// Routing:
//
//	POST /v1/analyze     by workload fingerprint; idempotent, fails over
//	                     to the next ring node when a replica is down
//	POST /v1/batch       split per-fingerprint across replicas, per-job
//	                     results re-merged in deterministic set-major order
//	POST /v1/sessions    sticky: the creating replica owns the session;
//	/v1/sessions/{id}... later requests always go to the owner (503 naming
//	                     the owner when it is down — sessions are stateful)
//	GET  /v1/analyzers   any healthy replica (registries are identical)
//	GET  /v1/events      fleet-wide SSE admission feed fanned in from every
//	                     replica, events labeled with their replica
//	GET  /v1/traces      recent proxied request traces
//	GET  /v1/traces/{id} merged fleet trace: routing spans + replica spans
//	GET  /healthz        proxy + per-replica health
//	GET  /metrics        Prometheus exposition: replica families summed +
//	                     per-replica {replica="..."} samples + edfproxy_*
//	                     routing/failover counters
//
// Diagnostics go to stderr as JSON (log/slog); -log-level tunes the
// threshold, -debug-addr serves net/http/pprof on a separate opt-in mux.
// The stdout banner line stays printf-style — scripts parse it for the
// listen address.
//
// A background checker probes every replica's /healthz each interval,
// ejecting failed replicas from the ring and re-admitting them when they
// recover; a transport error during proxying ejects immediately. Ring
// membership changes remap only ~1/N of the key space (virtual nodes),
// keeping the surviving replicas' caches warm.
//
// The proxy drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", ":8070", "listen address")
		replicas  = flag.String("replicas", "", "comma-separated edfd base URLs (required)")
		vnodes    = flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
		interval  = flag.Duration("health-interval", cluster.DefaultHealthInterval, "replica /healthz probe interval")
		logLevel  = flag.String("log-level", "info", "slog threshold: debug, info, warn or error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (off when empty)")
	)
	flag.Parse()

	log, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	p, err := cluster.New(cluster.Config{
		Replicas:       urls,
		VirtualNodes:   *vnodes,
		HealthInterval: *interval,
		Logger:         log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(2)
	}
	p.Start()
	defer p.Close()
	if *debugAddr != "" {
		go serveDebug(log, *debugAddr)
	}

	hs := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// An explicit listener resolves ":0" to a real port before the banner
	// prints, so scripts (make smoke-cluster) can parse the address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfproxy:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() {
		// The stdout banner is the scriptable contract (make smoke-cluster
		// parses the address); structured diagnostics go to stderr.
		fmt.Printf("edfproxy: listening on %s (%d replicas, %d vnodes, health every %s)\n",
			ln.Addr(), len(urls), *vnodes, *interval)
		log.Info("listening", "addr", ln.Addr().String(), "replicas", len(urls),
			"vnodes", *vnodes, "health_interval", interval.String())
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Close first so open feed relays and SSE streams end — otherwise
	// Shutdown would wait its full timeout on streams that never finish.
	log.Info("shutting down")
	p.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's JSON logger at the requested threshold.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// serveDebug exposes net/http/pprof on its own opt-in address, keeping
// profiling off the public API mux.
func serveDebug(log *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Info("debug mux listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Error("debug mux failed", "err", err)
	}
}
