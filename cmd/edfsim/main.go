// Command edfsim replays a task set under preemptive EDF and reports the
// schedule and the first deadline miss, cross-checking the verdict of the
// exact feasibility test.
//
// Usage:
//
//	edfsim -set tasks.json [-horizon N] [-trace] [-example name]
package main

import (
	"flag"
	"fmt"
	"os"

	edf "repro"
)

func main() {
	var (
		setPath = flag.String("set", "", "path to a task set JSON file")
		example = flag.String("example", "", "literature set name")
		horizon = flag.Int64("horizon", 0, "simulation horizon (default: feasibility bound)")
		trace   = flag.Bool("trace", false, "print the executed schedule")
		gantt   = flag.Bool("gantt", false, "render an ASCII Gantt chart of the schedule")
		width   = flag.Int("width", 100, "Gantt chart width in cells")
	)
	flag.Parse()

	var (
		ts   edf.TaskSet
		name string
		err  error
	)
	switch {
	case *setPath != "":
		ts, name, err = edf.LoadTaskSet(*setPath)
	case *example != "":
		ex, ok := edf.ExampleByName(*example)
		if !ok {
			err = fmt.Errorf("unknown example %q", *example)
		} else {
			ts, name = ex.Set, ex.Name
		}
	default:
		err = fmt.Errorf("one of -set or -example is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfsim:", err)
		os.Exit(2)
	}

	h := *horizon
	if h == 0 {
		var ok bool
		h, ok = edf.SimHorizon(ts)
		if !ok || h == 0 {
			h = 10 * ts.MaxPeriod()
		}
	}

	rep, err := edf.Simulate(ts.Synchronous(), edf.SimOptions{Horizon: h, RecordTrace: *trace || *gantt})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfsim:", err)
		os.Exit(2)
	}

	fmt.Printf("task set %q: %d tasks, U = %.4f, horizon %d\n", name, len(ts), edf.Utilization(ts), h)
	fmt.Printf("released %d jobs, completed %d, busy %d/%d time units\n",
		rep.JobsReleased, rep.JobsCompleted, rep.BusyTime, rep.EndTime)
	if *trace {
		for _, seg := range rep.Trace {
			if seg.Idle() {
				fmt.Printf("  [%8d,%8d) idle\n", seg.Start, seg.End)
				continue
			}
			fmt.Printf("  [%8d,%8d) %s job %d\n", seg.Start, seg.End, ts[seg.Task].Name, seg.Job)
		}
	}
	if *gantt {
		if err := edf.RenderGantt(os.Stdout, ts, rep.Trace, edf.GanttOptions{Width: *width}); err != nil {
			fmt.Fprintln(os.Stderr, "edfsim:", err)
			os.Exit(2)
		}
	}

	verdict := edf.Exact(ts)
	if rep.Missed {
		fmt.Printf("DEADLINE MISS: task %s at time %d\n", ts[rep.MissTask].Name, rep.MissTime)
		fmt.Printf("exact test verdict: %s\n", verdict.Verdict)
		os.Exit(1)
	}
	fmt.Printf("no deadline miss within horizon; exact test verdict: %s\n", verdict.Verdict)
}
