// Command edfexp regenerates the figures and the table of the paper's
// evaluation (Section 5) and prints them as ASCII tables or CSV.
//
// Usage:
//
//	edfexp -exp fig1|fig8|fig9|table1|rtc|burst|all [-sets N] [-seed 1] [-csv]
//	       [-paper] [-quiet] [-analyzers name,name,...]
//
// -paper selects the paper's original sample sizes (18,000 sets for
// Figure 8, 4,000 per ratio for Figure 9); the default sizes preserve the
// shape of every result and finish in seconds to minutes. -analyzers
// overrides the analyzer columns of fig8, fig9, table1 and burst with any
// set of names registered in the analysis engine (see edffeas -list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig1|fig8|fig9|table1|rtc|burst|all")
		sets      = flag.Int("sets", 0, "override the number of task sets (per point where applicable)")
		seed      = flag.Int64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of an ASCII table")
		paper     = flag.Bool("paper", false, "use the paper's original sample sizes")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		analyzers = flag.String("analyzers", "", "comma-separated engine analyzer names overriding the default columns (fig8, fig9, table1, burst)")
	)
	flag.Parse()

	// Resolve -analyzers through the registry so group keywords expand
	// and duplicates collapse; the experiments receive canonical names.
	var columns []string
	if *analyzers != "" {
		parsed, err := engine.Parse(*analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edfexp:", err)
			os.Exit(2)
		}
		for _, a := range parsed {
			columns = append(columns, a.Info().Name)
		}
	}

	var prog io.Writer = os.Stderr
	if *quiet {
		prog = nil
	}

	run := func(name string) error {
		switch name {
		case "fig1":
			cfg := experiments.Fig1Config{Seed: *seed, Progress: prog, SetsPerPoint: *sets}
			if *paper && *sets == 0 {
				cfg.SetsPerPoint = 2000
			}
			res := experiments.Fig1(cfg)
			fmt.Println("# Figure 1: acceptance rate over utilization")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		case "fig8":
			cfg := experiments.Fig8Config{Seed: *seed, Progress: prog, Sets: *sets, Analyzers: columns}
			if *paper && *sets == 0 {
				cfg.Sets = 18000
			}
			res := experiments.Fig8(cfg)
			fmt.Println("# Figure 8: checked intervals over utilization (90-99%)")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		case "fig9":
			cfg := experiments.Fig9Config{Seed: *seed, Progress: prog, SetsPerRatio: *sets, Analyzers: columns}
			if *paper && *sets == 0 {
				cfg.SetsPerRatio = 4000
			}
			res := experiments.Fig9(cfg)
			fmt.Println("# Figure 9: checked intervals over the period ratio Tmax/Tmin")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		case "table1":
			if err := experiments.CheckAnalyzers(columns, false, true); err != nil {
				return err
			}
			var res experiments.Table1Result
			if len(columns) > 0 {
				res = experiments.Table1With(columns)
			} else {
				res = experiments.Table1()
			}
			fmt.Println("# Table 1: iterations for example task graphs")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		case "rtc":
			cfg := experiments.RTCConfig{Seed: *seed, Progress: prog, SetsPerPoint: *sets}
			res := experiments.RTCCompare(cfg)
			fmt.Println("# Section 3.6: real-time calculus approximation vs Devi vs exact")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		case "burst":
			if err := experiments.CheckAnalyzers(columns, true, true); err != nil {
				return err
			}
			cfg := experiments.BurstConfig{Seed: *seed, Progress: prog, SetsPerPoint: *sets, Analyzers: columns}
			res := experiments.Burst(cfg)
			fmt.Println("# Event stream extension: effort on bursty workloads by burst width")
			if *csv {
				return res.RenderCSV(os.Stdout)
			}
			return res.RenderText(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig1", "fig8", "fig9", "rtc"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "edfexp:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
