// Command edfsmoke is the end-to-end smoke test behind `make smoke`: it
// builds and starts a real edfd process on an ephemeral port, drives
// analyze, batch and session propose-batch with both workload models
// through the typed client, and exits non-zero on any non-2xx response or
// contract violation (missed cache hit, colliding fingerprints, wrong
// verdict count).
//
// Usage:
//
//	edfsmoke [-edfd path/to/edfd] [-timeout 60s]
//
// Without -edfd the daemon is compiled from ./cmd/edfd into a temp dir,
// so `go run ./cmd/edfsmoke` works from a clean checkout.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	var (
		edfdPath = flag.String("edfd", "", "edfd binary to drive (default: build ./cmd/edfd)")
		timeout  = flag.Duration("timeout", 60*time.Second, "overall smoke deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *edfdPath); err != nil {
		fmt.Fprintln(os.Stderr, "edfsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("edfsmoke: PASS")
}

func run(ctx context.Context, edfdPath string) error {
	if edfdPath == "" {
		dir, err := os.MkdirTemp("", "edfsmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		edfdPath = filepath.Join(dir, "edfd")
		build := exec.CommandContext(ctx, "go", "build", "-o", edfdPath, "./cmd/edfd")
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("building edfd: %v\n%s", err, out)
		}
	}

	cmd := exec.CommandContext(ctx, edfdPath, "-addr", "127.0.0.1:0", "-session-ttl", "10m")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	addr, err := listenAddr(stdout)
	if err != nil {
		return err
	}
	c := client.New("http://"+addr, nil)
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}
	fmt.Println("edfsmoke: edfd healthy on", addr)

	sporadic := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	events := []edf.EventTask{
		{Name: "periodic", WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
		{Name: "burst", WCET: 1, Deadline: 24, Stream: edf.BurstStream(50, 3, 4)},
	}

	// Analyze: both models, then both again — the repeats must be cache
	// hits and the two fingerprints must live in different domains.
	fps := map[string]string{}
	for _, wl := range []struct {
		name string
		w    edf.Workload
	}{{"sporadic", edf.SporadicWorkload(sporadic)}, {"events", edf.EventWorkload(events)}} {
		first, err := c.Analyze(ctx, service.AnalyzeRequest{Name: wl.name, Workload: wl.w})
		if err != nil {
			return fmt.Errorf("analyze %s: %w", wl.name, err)
		}
		if first.Fingerprint == "" {
			return fmt.Errorf("analyze %s: no fingerprint", wl.name)
		}
		again, err := c.Analyze(ctx, service.AnalyzeRequest{Name: wl.name, Workload: wl.w})
		if err != nil {
			return fmt.Errorf("re-analyze %s: %w", wl.name, err)
		}
		if !again.Cached || again.Fingerprint != first.Fingerprint {
			return fmt.Errorf("re-analyze %s: cached=%v fingerprint %q vs %q",
				wl.name, again.Cached, again.Fingerprint, first.Fingerprint)
		}
		fps[wl.name] = first.Fingerprint
		fmt.Printf("edfsmoke: analyze %s: %s (cache hit on repeat)\n", wl.name, first.Result.Verdict)
	}
	if fps["sporadic"] == fps["events"] {
		return fmt.Errorf("sporadic and event workloads share fingerprint %s", fps["sporadic"])
	}

	// Batch: both models in one request.
	bresp, err := c.Batch(ctx, service.BatchRequest{
		Sets: []service.WorkloadSet{
			{Name: "s", Workload: edf.SporadicWorkload(sporadic)},
			{Name: "e", Workload: edf.EventWorkload(events)},
		},
		Analyzers: []string{"cascade"},
	})
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(bresp.Results) != 2 {
		return fmt.Errorf("batch returned %d results, want 2", len(bresp.Results))
	}
	for _, jr := range bresp.Results {
		if jr.Err != "" {
			return fmt.Errorf("batch job %s/%s failed: %s", jr.SetName, jr.Analyzer, jr.Err)
		}
	}
	fmt.Println("edfsmoke: batch over both models ok")

	// Sessions: one per model, driven through propose-batch.
	for _, sess := range []struct {
		name  string
		seed  edf.Workload
		tasks []service.WorkloadTask
	}{
		{
			name: "sporadic",
			seed: edf.SporadicWorkload(sporadic),
			tasks: []service.WorkloadTask{
				service.SporadicTask(edf.Task{Name: "a", WCET: 1, Deadline: 50, Period: 100}),
				service.SporadicTask(edf.Task{Name: "b", WCET: 2, Deadline: 60, Period: 100}),
			},
		},
		{
			name: "events",
			seed: edf.EventWorkload(events),
			tasks: []service.WorkloadTask{
				service.EventTask(edf.EventTask{Name: "x", WCET: 1, Deadline: 40, Stream: edf.PeriodicStream(100)}),
				service.EventTask(edf.EventTask{Name: "y", WCET: 2, Deadline: 80, Stream: edf.PeriodicStream(200)}),
			},
		},
	} {
		h, state, err := c.OpenSession(ctx, service.SessionRequest{Workload: sess.seed})
		if err != nil {
			return fmt.Errorf("open %s session: %w", sess.name, err)
		}
		if state.Model != sess.name {
			return fmt.Errorf("%s session reports model %q", sess.name, state.Model)
		}
		presp, err := h.ProposeBatch(ctx, service.ProposeBatchRequest{Tasks: sess.tasks})
		if err != nil {
			return fmt.Errorf("%s propose-batch: %w", sess.name, err)
		}
		if len(presp.Results) != len(sess.tasks) {
			return fmt.Errorf("%s propose-batch: %d verdicts for %d tasks",
				sess.name, len(presp.Results), len(sess.tasks))
		}
		if _, err := h.Commit(ctx); err != nil {
			return fmt.Errorf("%s commit: %w", sess.name, err)
		}
		if err := h.Close(ctx); err != nil {
			return fmt.Errorf("%s close: %w", sess.name, err)
		}
		fmt.Printf("edfsmoke: %s session propose-batch ok (%d verdicts)\n",
			sess.name, len(presp.Results))
	}
	return nil
}

// listenAddr parses the daemon's startup banner for the resolved address.
func listenAddr(stdout io.Reader) (string, error) {
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "edfd: listening on "); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			addr, _, _ := strings.Cut(rest, " ")
			return addr, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("edfd exited before announcing its address")
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(ctx context.Context, c *client.Client) error {
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		} else if ctx.Err() != nil {
			return fmt.Errorf("edfd never became healthy: %w", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
