// Command edfsmoke is the end-to-end smoke test behind `make smoke` and
// `make smoke-cluster`: it builds and starts real daemons on ephemeral
// ports, drives analyze, batch, session propose-batch and partitioned
// placement with every workload model through the typed client, and
// exits non-zero on any
// non-2xx response or contract violation (missed cache hit, colliding
// fingerprints, wrong verdict count, non-deterministic batch order).
//
// Usage:
//
//	edfsmoke [-cluster n] [-edfd path] [-edfproxy path] [-timeout 120s]
//
// With -cluster n > 0 it boots n edfd replicas behind a real edfproxy
// and drives the whole suite through the proxy, plus cluster-specific
// checks: repeated workloads route to the same replica and hit its
// cache, split batches re-merge deterministically, and the aggregate
// /metrics page carries both proxy and fleet counters.
//
// Every daemon journals to a shared -store-dir, and the suite ends with
// the durability phase: single mode kill -9s the edfd mid-session and
// requires a restart on the same directory to resume the committed
// admission state; cluster mode kills a session owner and requires the
// proxy to drain every live session through a takeover peer with no
// client-visible error. On failure the store directory listing and each
// log tail are dumped alongside the daemon stderr.
//
// Without -edfd/-edfproxy the daemons are compiled from ./cmd into a
// temp dir, so `go run ./cmd/edfsmoke` works from a clean checkout.
// Every daemon's stderr is captured; when startup or any request fails,
// the captured output is printed so CI failures are diagnosable from
// the log alone.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	edf "repro"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	var (
		edfdPath  = flag.String("edfd", "", "edfd binary to drive (default: build ./cmd/edfd)")
		proxyPath = flag.String("edfproxy", "", "edfproxy binary to drive (default: build ./cmd/edfproxy)")
		clusterN  = flag.Int("cluster", 0, "boot n edfd replicas behind an edfproxy and smoke through the proxy (0 = single edfd)")
		timeout   = flag.Duration("timeout", 120*time.Second, "overall smoke deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	daemons := &fleet{}
	err := run(ctx, daemons, *edfdPath, *proxyPath, *clusterN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edfsmoke: FAIL:", err)
		// Snapshot /metrics while the daemons are still alive, then kill
		// them and dump their stderr: counters plus logs make a CI failure
		// diagnosable without a rerun.
		daemons.dumpMetrics(os.Stderr)
		daemons.stopAll()
		daemons.dumpStderr(os.Stderr)
		os.Exit(1)
	}
	daemons.stopAll()
	fmt.Println("edfsmoke: PASS")
}

// tailBuffer captures the last cap bytes of a daemon's stderr, so a
// failure report carries the daemon's own diagnostics without an
// unbounded buffer on a chatty process.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
	cap int
}

func newTailBuffer() *tailBuffer { return &tailBuffer{cap: 64 << 10} }

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// daemon is one child process with its captured stderr and parsed
// listen address.
type daemon struct {
	name   string
	cmd    *exec.Cmd
	stderr *tailBuffer
	addr   string
}

// fleet tracks every daemon for teardown and failure reporting.
type fleet struct{ daemons []*daemon }

func (f *fleet) stopAll() {
	for _, d := range f.daemons {
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Wait()
	}
}

// dumpStderr prints every daemon's captured stderr — the satellite fix
// that makes CI smoke failures diagnosable: the non-2xx status alone
// says nothing, the daemon's own log usually says everything.
func (f *fleet) dumpStderr(w io.Writer) {
	for _, d := range f.daemons {
		out := strings.TrimSpace(d.stderr.String())
		if out == "" {
			fmt.Fprintf(w, "edfsmoke: %s (%s): no stderr output\n", d.name, d.addr)
			continue
		}
		fmt.Fprintf(w, "edfsmoke: --- %s (%s) stderr ---\n%s\nedfsmoke: --- end %s stderr ---\n",
			d.name, d.addr, out, d.name)
	}
}

// dumpMetrics captures a final /metrics snapshot from every daemon that
// is still answering — the counter state at the moment of failure often
// pinpoints which daemon absorbed the work that went missing.
func (f *fleet) dumpMetrics(w io.Writer) {
	hc := &http.Client{Timeout: 2 * time.Second}
	for _, d := range f.daemons {
		resp, err := hc.Get("http://" + d.addr + "/metrics")
		if err != nil {
			fmt.Fprintf(w, "edfsmoke: %s (%s): metrics unavailable: %v\n", d.name, d.addr, err)
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		fmt.Fprintf(w, "edfsmoke: --- %s (%s) /metrics ---\n%s\nedfsmoke: --- end %s /metrics ---\n",
			d.name, d.addr, strings.TrimSpace(string(b)), d.name)
	}
}

// start launches a daemon and parses "<name>: listening on <addr>" from
// its stdout.
func (f *fleet) start(ctx context.Context, name, bin string, args ...string) (*daemon, error) {
	d := &daemon{name: name, stderr: newTailBuffer()}
	d.cmd = exec.CommandContext(ctx, bin, args...)
	d.cmd.Stderr = d.stderr
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := d.cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", name, err)
	}
	f.daemons = append(f.daemons, d)
	addr, err := listenAddr(stdout, name+": listening on ")
	if err != nil {
		return nil, fmt.Errorf("%s startup: %w", name, err)
	}
	d.addr = addr
	return d, nil
}

// listenAddr parses a daemon's startup banner for the resolved address.
func listenAddr(stdout io.Reader, prefix string) (string, error) {
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			addr, _, _ := strings.Cut(rest, " ")
			return addr, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("daemon exited before announcing its address")
}

// buildTool compiles ./cmd/<name> into dir.
func buildTool(ctx context.Context, dir, name string) (string, error) {
	bin := filepath.Join(dir, name)
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building %s: %v\n%s", name, err, out)
	}
	return bin, nil
}

func run(ctx context.Context, daemons *fleet, edfdPath, proxyPath string, clusterN int) error {
	if edfdPath == "" || (clusterN > 0 && proxyPath == "") {
		dir, err := os.MkdirTemp("", "edfsmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		if edfdPath == "" {
			if edfdPath, err = buildTool(ctx, dir, "edfd"); err != nil {
				return err
			}
		}
		if clusterN > 0 && proxyPath == "" {
			if proxyPath, err = buildTool(ctx, dir, "edfproxy"); err != nil {
				return err
			}
		}
	}

	// Every daemon journals into one shared store directory, so the
	// whole suite runs with durability on, and the recovery/takeover
	// phases at the end have state to replay.
	storeDir, err := os.MkdirTemp("", "edfsmoke-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	if clusterN <= 0 {
		d, err := daemons.start(ctx, "edfd", edfdPath, "-addr", "127.0.0.1:0", "-session-ttl", "10m",
			"-store-dir", storeDir, "-store-node", "edfd-smoke")
		if err != nil {
			return err
		}
		c := client.New("http://"+d.addr, nil)
		if err := waitHealthy(ctx, c); err != nil {
			return err
		}
		fmt.Println("edfsmoke: edfd healthy on", d.addr)
		if err := drive(ctx, c); err != nil {
			return err
		}
		if err := driveFeed(ctx, c, false); err != nil {
			return err
		}
		if err := driveRecovery(ctx, daemons, edfdPath, storeDir, d); err != nil {
			dumpStore(os.Stderr, storeDir)
			return err
		}
		return nil
	}

	// Cluster mode: n real replicas behind a real proxy, each journaling
	// to its own segment of the shared directory.
	var replicas []string
	for i := range clusterN {
		d, err := daemons.start(ctx, "edfd", edfdPath, "-addr", "127.0.0.1:0", "-session-ttl", "10m",
			"-store-dir", storeDir, "-store-node", fmt.Sprintf("edfd-%d", i))
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		replicas = append(replicas, "http://"+d.addr)
	}
	proxy, err := daemons.start(ctx, "edfproxy", proxyPath,
		"-addr", "127.0.0.1:0", "-replicas", strings.Join(replicas, ","), "-health-interval", "250ms")
	if err != nil {
		return err
	}
	c := client.New("http://"+proxy.addr, nil)
	if err := waitHealthy(ctx, c); err != nil {
		return err
	}
	fmt.Printf("edfsmoke: edfproxy healthy on %s over %d replicas\n", proxy.addr, clusterN)

	// The full single-daemon suite must behave identically via the proxy.
	if err := drive(ctx, c); err != nil {
		return err
	}
	if err := driveCluster(ctx, c, clusterN); err != nil {
		return err
	}
	if err := driveFeed(ctx, c, true); err != nil {
		return err
	}
	if err := driveTakeover(ctx, daemons, c); err != nil {
		dumpStore(os.Stderr, storeDir)
		return err
	}
	return nil
}

// drive runs the protocol suite — analyze with cache/fingerprint checks,
// batch, sessions with propose-batch, both workload models — against one
// endpoint, which may be an edfd or an edfproxy (the contract is the
// same; that is the point of the typed client).
func drive(ctx context.Context, c *client.Client) error {
	sporadic := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	events := []edf.EventTask{
		{Name: "periodic", WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
		{Name: "burst", WCET: 1, Deadline: 24, Stream: edf.BurstStream(50, 3, 4)},
	}

	// Analyze: both models, then both again — the repeats must be cache
	// hits and the two fingerprints must live in different domains.
	fps := map[string]string{}
	for _, wl := range []struct {
		name string
		w    edf.Workload
	}{{"sporadic", edf.SporadicWorkload(sporadic)}, {"events", edf.EventWorkload(events)}} {
		first, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: wl.name, Workload: wl.w})
		if err != nil {
			return fmt.Errorf("analyze %s: %w", wl.name, err)
		}
		if first.Fingerprint == "" {
			return fmt.Errorf("analyze %s: no fingerprint", wl.name)
		}
		again, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: wl.name, Workload: wl.w})
		if err != nil {
			return fmt.Errorf("re-analyze %s: %w", wl.name, err)
		}
		if !again.Cached || again.Fingerprint != first.Fingerprint {
			return fmt.Errorf("re-analyze %s: cached=%v fingerprint %q vs %q",
				wl.name, again.Cached, again.Fingerprint, first.Fingerprint)
		}
		fps[wl.name] = first.Fingerprint
		fmt.Printf("edfsmoke: analyze %s: %s (cache hit on repeat)\n", wl.name, first.Result.Verdict)
	}
	if fps["sporadic"] == fps["events"] {
		return fmt.Errorf("sporadic and event workloads share fingerprint %s", fps["sporadic"])
	}

	// Batch: both models in one request.
	bresp, _, err := c.Batch(ctx, service.BatchRequest{
		Sets: []service.WorkloadSet{
			{Name: "s", Workload: edf.SporadicWorkload(sporadic)},
			{Name: "e", Workload: edf.EventWorkload(events)},
		},
		Analyzers: []string{"cascade"},
	})
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(bresp.Results) != 2 {
		return fmt.Errorf("batch returned %d results, want 2", len(bresp.Results))
	}
	for _, jr := range bresp.Results {
		if jr.Err != "" {
			return fmt.Errorf("batch job %s/%s failed: %s", jr.SetName, jr.Analyzer, jr.Err)
		}
	}
	fmt.Println("edfsmoke: batch over both models ok")

	// Sessions: one per model, driven through propose-batch.
	for _, sess := range []struct {
		name  string
		seed  edf.Workload
		tasks []service.WorkloadTask
	}{
		{
			name: "sporadic",
			seed: edf.SporadicWorkload(sporadic),
			tasks: []service.WorkloadTask{
				service.SporadicTask(edf.Task{Name: "a", WCET: 1, Deadline: 50, Period: 100}),
				service.SporadicTask(edf.Task{Name: "b", WCET: 2, Deadline: 60, Period: 100}),
			},
		},
		{
			name: "events",
			seed: edf.EventWorkload(events),
			tasks: []service.WorkloadTask{
				service.EventTask(edf.EventTask{Name: "x", WCET: 1, Deadline: 40, Stream: edf.PeriodicStream(100)}),
				service.EventTask(edf.EventTask{Name: "y", WCET: 2, Deadline: 80, Stream: edf.PeriodicStream(200)}),
			},
		},
	} {
		h, state, err := c.OpenSession(ctx, service.SessionRequest{Workload: sess.seed})
		if err != nil {
			return fmt.Errorf("open %s session: %w", sess.name, err)
		}
		if state.Model != sess.name {
			return fmt.Errorf("%s session reports model %q", sess.name, state.Model)
		}
		presp, err := h.ProposeBatch(ctx, service.ProposeBatchRequest{Tasks: sess.tasks})
		if err != nil {
			return fmt.Errorf("%s propose-batch: %w", sess.name, err)
		}
		if len(presp.Results) != len(sess.tasks) {
			return fmt.Errorf("%s propose-batch: %d verdicts for %d tasks",
				sess.name, len(presp.Results), len(sess.tasks))
		}
		if _, err := h.Commit(ctx); err != nil {
			return fmt.Errorf("%s commit: %w", sess.name, err)
		}
		if err := h.Close(ctx); err != nil {
			return fmt.Errorf("%s close: %w", sess.name, err)
		}
		fmt.Printf("edfsmoke: %s session propose-batch ok (%d verdicts)\n",
			sess.name, len(presp.Results))
	}
	if err := driveChurn(ctx, c); err != nil {
		return err
	}
	if err := driveSpread(ctx, c); err != nil {
		return err
	}
	return drivePartition(ctx, c)
}

// drivePartition pushes a partitioned multiprocessor workload through
// POST /v1/partition — directly or via the proxy, which routes it by
// workload fingerprint — and checks the placement contract end to end:
// the schema advertises the model, a feasible placement carries one
// proven bin per processor and a trace whose span tree has one bin:pN
// span per processor under the placement span, and an overloaded
// workload comes back infeasible with the heuristic rejection trail.
func drivePartition(ctx context.Context, c *client.Client) error {
	sr, err := c.Schema(ctx)
	if err != nil {
		return fmt.Errorf("partition: schema: %w", err)
	}
	if !strings.Contains(strings.Join(sr.Models, ","), "partitioned") {
		return fmt.Errorf("partition: schema models %v lack partitioned", sr.Models)
	}

	procs := []edf.Processor{{Name: "p0", Speed: 1}, {Name: "p1", Speed: 2}}
	resp, rt, err := c.Partition(ctx, service.PartitionRequest{
		Name: "smoke",
		Workload: edf.PartitionedWorkload(procs, []edf.PartitionedTask{
			{Task: edf.Task{Name: "a", WCET: 6, Deadline: 10, Period: 10}},
			{Task: edf.Task{Name: "b", WCET: 6, Deadline: 10, Period: 10}},
			{Task: edf.Task{Name: "pinned", WCET: 2, Deadline: 10, Period: 10}, Affinity: []int{0}},
		}),
	})
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if !resp.Feasible || len(resp.Processors) != len(procs) {
		return fmt.Errorf("partition: placement not proven: %+v", resp.Placement)
	}
	for _, rep := range resp.Processors {
		if rep.Verdict != "feasible" {
			return fmt.Errorf("partition: processor %d verdict %q", rep.Index, rep.Verdict)
		}
	}
	if rt.TraceID == "" {
		return fmt.Errorf("partition: no trace id on the route")
	}
	tr, err := c.Trace(ctx, rt.TraceID)
	if err != nil {
		return fmt.Errorf("partition: trace %s unresolvable: %w", rt.TraceID, err)
	}
	bins, place := 0, false
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "bin:p") {
			bins++
		}
		if sp.Name == "place" {
			place = true
		}
	}
	if !place || bins != len(resp.Processors) {
		return fmt.Errorf("partition: trace %s spans place=%v bins=%d, want the placement span and %d bins",
			rt.TraceID, place, bins, len(resp.Processors))
	}

	// Overload: four tasks of 0.7 utilization cannot share 1+2 capacity.
	over := make([]edf.PartitionedTask, 4)
	for i := range over {
		over[i] = edf.PartitionedTask{Task: edf.Task{
			Name: fmt.Sprintf("heavy-%d", i), WCET: 7, Deadline: 10, Period: 10,
		}}
	}
	oresp, _, err := c.Partition(ctx, service.PartitionRequest{
		Name:     "smoke-overload",
		Workload: edf.PartitionedWorkload(procs, over),
	})
	if err != nil {
		return fmt.Errorf("partition: overload: %w", err)
	}
	if oresp.Feasible || oresp.Counterexample == nil || len(oresp.Counterexample.Rejections) == 0 {
		return fmt.Errorf("partition: overload not refuted with a counterexample: %+v", oresp.Placement)
	}
	fmt.Printf("edfsmoke: partition ok (%d bins proven and traced, overload refuted by %s after %d rejections)\n",
		bins, oresp.Counterexample.Heuristic, len(oresp.Counterexample.Rejections))
	return nil
}

// driveSpread pushes a log-uniform spread workload — the `edfgen -spread`
// shape whose period denominators stress the bounded-arithmetic fast
// path — through analyze and a full session propose/commit cycle, and
// requires conclusive verdicts end to end: a daemon that silently lost
// exact arithmetic on wide period ranges would surface here first.
func driveSpread(ctx context.Context, c *client.Client) error {
	ts, err := edf.Generate(edf.GenConfig{
		N: 24, Utilization: 0.9,
		PeriodMin: 1_000, PeriodMax: 10_000_000, // edfgen -tmin 1000 -spread 4
		LogUniformPeriods: true, GapMean: 0.2,
	}, newDeterministicRand())
	if err != nil {
		return fmt.Errorf("spread: generate: %w", err)
	}
	wl := edf.SporadicWorkload(ts)
	resp, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "spread", Workload: wl})
	if err != nil {
		return fmt.Errorf("spread: analyze: %w", err)
	}
	if v := resp.Result.Verdict; v != "feasible" && v != "infeasible" {
		return fmt.Errorf("spread: analyze verdict %q is not conclusive", v)
	}
	h, state, err := c.OpenSession(ctx, service.SessionRequest{Workload: wl})
	if err != nil {
		return fmt.Errorf("spread: open session: %w", err)
	}
	if state.Committed != len(ts) {
		return fmt.Errorf("spread: session opened with %d committed tasks, want %d", state.Committed, len(ts))
	}
	// Propose across the whole period range: the shortest and longest
	// decades share one demand walk inside the admission analyzer.
	admitted := 0
	for _, task := range []edf.Task{
		{Name: "spread-lo", WCET: 1, Deadline: 900, Period: 1_000},
		{Name: "spread-hi", WCET: 1000, Deadline: 9_000_000, Period: 10_000_000},
	} {
		pr, err := h.Propose(ctx, service.ProposeRequest{Task: service.SporadicTask(task)})
		if err != nil {
			return fmt.Errorf("spread: propose %s: %w", task.Name, err)
		}
		if pr.Admitted {
			admitted++
		}
	}
	if admitted == 0 {
		return fmt.Errorf("spread: no probe task admitted against a U=0.9 seed")
	}
	if _, err := h.Commit(ctx); err != nil {
		return fmt.Errorf("spread: commit: %w", err)
	}
	if err := h.Close(ctx); err != nil {
		return fmt.Errorf("spread: close: %w", err)
	}
	fmt.Printf("edfsmoke: spread workload ok (analyze %s, %d of 2 probes admitted)\n",
		resp.Result.Verdict, admitted)
	return nil
}

// driveChurn replays generated churn scenarios (the `edfgen -churn`
// format) through real sessions, one per workload model, shadowing the
// committed/pending counters client-side: any drift between the shadow
// and the server's counts means a propose, commit or rollback moved
// state it should not have — exactly the regression class the
// incremental admission path could introduce.
func driveChurn(ctx context.Context, c *client.Client) error {
	for _, events := range []bool{false, true} {
		name := "sporadic"
		if events {
			name = "events"
		}
		sc, err := edf.GenerateChurn("smoke-"+name, edf.ChurnConfig{
			SeedTasks: 8, Ops: 60, Events: events,
		}, newDeterministicRand())
		if err != nil {
			return fmt.Errorf("churn %s: generate: %w", name, err)
		}
		h, state, err := c.OpenSession(ctx, service.SessionRequest{Workload: sc.Seed})
		if err != nil {
			return fmt.Errorf("churn %s: open: %w", name, err)
		}
		committed, pending := state.Committed, 0
		admitted, escalated := 0, 0
		for i, op := range sc.Ops {
			switch op.Op {
			case edf.ChurnPropose:
				pr, err := h.Propose(ctx, service.ProposeRequest{Task: *op.Task})
				if err != nil {
					return fmt.Errorf("churn %s: op %d: %w", name, i, err)
				}
				if pr.Admitted {
					pending++
					admitted++
				}
				if pr.Escalated {
					escalated++
				}
				if pr.Committed != committed || pr.Pending != pending {
					return fmt.Errorf("churn %s: op %d: state %d/%d, shadow %d/%d",
						name, i, pr.Committed, pr.Pending, committed, pending)
				}
			case edf.ChurnCommit:
				cr, err := h.Commit(ctx)
				if err != nil {
					return fmt.Errorf("churn %s: op %d commit: %w", name, i, err)
				}
				if cr.Moved != pending || cr.Committed != committed+pending {
					return fmt.Errorf("churn %s: op %d: commit moved %d of %d pending",
						name, i, cr.Moved, pending)
				}
				committed += pending
				pending = 0
			case edf.ChurnRollback:
				rr, err := h.Rollback(ctx)
				if err != nil {
					return fmt.Errorf("churn %s: op %d rollback: %w", name, i, err)
				}
				if rr.Moved != pending || rr.Committed != committed {
					return fmt.Errorf("churn %s: op %d: rollback moved %d of %d pending",
						name, i, rr.Moved, pending)
				}
				pending = 0
			}
		}
		if err := h.Close(ctx); err != nil {
			return fmt.Errorf("churn %s: close: %w", name, err)
		}
		fmt.Printf("edfsmoke: %s churn ok (%d ops, %d admitted, %d escalated)\n",
			name, len(sc.Ops), admitted, escalated)
	}
	return nil
}

// newDeterministicRand gives the churn phase a fixed seed so smoke
// failures reproduce.
func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(20260808)) }

// driveCluster runs the proxy-specific checks: ring affinity, split
// batch determinism and the aggregate metrics page.
func driveCluster(ctx context.Context, c *client.Client, n int) error {
	// Affinity: distinct workloads spread over the ring; each repeat must
	// land on its first replica and hit that replica's cache.
	servedBy := map[string]bool{}
	for i := range 12 {
		wl := edf.SporadicWorkload(edf.TaskSet{
			{Name: "a", WCET: 1, Deadline: 40 + int64(i), Period: 100 + int64(i)},
			{Name: "b", WCET: 2, Deadline: 90, Period: 200},
		})
		first, rt1, err := c.AnalyzeRouted(ctx, service.AnalyzeRequest{Workload: wl})
		if err != nil {
			return fmt.Errorf("cluster analyze %d: %w", i, err)
		}
		if rt1.Replica == "" {
			return fmt.Errorf("cluster analyze %d: proxy did not name a replica", i)
		}
		again, rt2, err := c.AnalyzeRouted(ctx, service.AnalyzeRequest{Workload: wl})
		if err != nil {
			return fmt.Errorf("cluster re-analyze %d: %w", i, err)
		}
		if rt2.Replica != rt1.Replica {
			return fmt.Errorf("workload %d remapped: %s then %s", i, rt1.Replica, rt2.Replica)
		}
		if !again.Cached || again.Fingerprint != first.Fingerprint {
			return fmt.Errorf("workload %d repeat missed the cache on %s", i, rt2.Replica)
		}
		servedBy[rt1.Replica] = true
	}
	if n > 1 && len(servedBy) < 2 {
		return fmt.Errorf("12 distinct workloads all routed to one replica: %v", servedBy)
	}
	fmt.Printf("edfsmoke: cluster affinity ok (%d replicas served, repeats cached)\n", len(servedBy))

	// Deterministic split/merge: a mixed-model batch large enough to
	// split, issued twice, must come back in identical set-major order
	// with identical verdicts.
	req := service.BatchRequest{Analyzers: []string{"cascade"}}
	for i := range 10 {
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", i),
			Workload: edf.SporadicWorkload(edf.TaskSet{
				{Name: "t", WCET: 2, Deadline: 50 + int64(i), Period: 80 + int64(i)},
			}),
		})
	}
	req.Sets = append(req.Sets, service.WorkloadSet{
		Name: "ev",
		Workload: edf.EventWorkload([]edf.EventTask{
			{Name: "p", WCET: 1, Deadline: 9, Stream: edf.PeriodicStream(10)},
		}),
	})
	norm := func(r service.BatchResponse) (string, error) {
		for i := range r.Results {
			r.Results[i].WallNS = 0
			r.Results[i].Cached = false
		}
		b, err := json.Marshal(r)
		return string(b), err
	}
	first, rt, err := c.BatchRouted(ctx, req)
	if err != nil {
		return fmt.Errorf("cluster batch: %w", err)
	}
	for i, jr := range first.Results {
		if jr.SetIndex != i || jr.SetName != req.Sets[i].Name {
			return fmt.Errorf("cluster batch order broken at %d: set %d %q", i, jr.SetIndex, jr.SetName)
		}
		if jr.Err != "" {
			return fmt.Errorf("cluster batch job %d failed: %s", i, jr.Err)
		}
	}
	again, _, err := c.BatchRouted(ctx, req)
	if err != nil {
		return fmt.Errorf("cluster batch repeat: %w", err)
	}
	a, err := norm(first)
	if err != nil {
		return err
	}
	b, err := norm(again)
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("cluster batch not deterministic:\n%s\nvs\n%s", a, b)
	}
	split := "unsplit"
	if strings.Contains(rt.Replica, ",") {
		split = "split across " + rt.Replica
	}
	fmt.Printf("edfsmoke: cluster batch deterministic through the merge path (%s)\n", split)

	// Aggregate metrics: proxy counters plus fleet-summed replica
	// counters on one page.
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("cluster metrics: %w", err)
	}
	for _, want := range []string{
		"edfproxy_analyze_routed_total",
		"edfproxy_replicas_healthy " + fmt.Sprint(n),
		"edfd_cache_hits",
		"{replica=",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("aggregate metrics missing %q:\n%s", want, text)
		}
	}
	fmt.Println("edfsmoke: cluster aggregate metrics ok")
	return nil
}

// driveFeed subscribes to the live admission feed (fleet-wide and
// per-session), drives session churn underneath it, and asserts every
// decision event carries a trace ID that resolves to a span record on
// the same endpoint. On failure the captured event stream is dumped, so
// a missing or malformed event is diagnosable from the log.
func driveFeed(ctx context.Context, c *client.Client, cluster bool) error {
	tail := newTailBuffer()
	fail := func(err error) error {
		if out := strings.TrimSpace(tail.String()); out != "" {
			fmt.Fprintf(os.Stderr, "edfsmoke: --- event stream tail ---\n%s\nedfsmoke: --- end event stream ---\n", out)
		}
		return err
	}
	feedCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fleetCh, err := c.FleetEvents(feedCtx)
	if err != nil {
		return fail(fmt.Errorf("feed: fleet subscribe: %w", err))
	}
	// Against a proxy the fleet feed's per-replica relays connect
	// asynchronously after the subscribe returns; give them a moment so
	// the open event of the session below cannot slip past the fan-in.
	time.Sleep(500 * time.Millisecond)

	h, _, err := c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		return fail(fmt.Errorf("feed: open session: %w", err))
	}
	ownCh, err := c.Events(feedCtx, h.ID)
	if err != nil {
		return fail(fmt.Errorf("feed: session subscribe: %w", err))
	}

	// Churn under the live feed: three proposes, a commit, one more
	// propose, a rollback, then close — seven events for this session.
	proposes := 0
	for i := range 3 {
		if _, err := h.Propose(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{WCET: 1, Deadline: 50 + int64(i), Period: 100}),
		}); err != nil {
			return fail(fmt.Errorf("feed: propose %d: %w", i, err))
		}
		proposes++
	}
	if _, err := h.Commit(ctx); err != nil {
		return fail(fmt.Errorf("feed: commit: %w", err))
	}
	if _, err := h.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{WCET: 1, Deadline: 80, Period: 160}),
	}); err != nil {
		return fail(fmt.Errorf("feed: extra propose: %w", err))
	}
	proposes++
	if _, err := h.Rollback(ctx); err != nil {
		return fail(fmt.Errorf("feed: rollback: %w", err))
	}
	if err := h.Close(ctx); err != nil {
		return fail(fmt.Errorf("feed: close: %w", err))
	}

	// Collect this session's events off the fleet feed until the close
	// arrives (the feed is ordered per publisher, so close is last).
	record := func(src string, ev obs.Event) {
		b, _ := json.Marshal(ev)
		fmt.Fprintf(tail, "%s %s\n", src, b)
	}
	counts := map[string]int{}
	var mine []obs.Event
	deadline := time.After(15 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-fleetCh:
			if !ok {
				return fail(fmt.Errorf("feed: fleet stream closed early"))
			}
			record("fleet", ev)
			if ev.Session != h.ID {
				continue
			}
			mine = append(mine, ev)
			counts[ev.Type]++
			if ev.Type == obs.EventClose {
				break collect
			}
		case <-deadline:
			return fail(fmt.Errorf("feed: timed out waiting for events (got %v)", counts))
		case <-ctx.Done():
			return fail(ctx.Err())
		}
	}
	decisions := counts[obs.EventAdmit] + counts[obs.EventReject]
	if decisions != proposes || counts[obs.EventCommit] != 1 ||
		counts[obs.EventRollback] != 1 || counts[obs.EventOpen] != 1 {
		return fail(fmt.Errorf("feed: event counts off: %v for %d proposes", counts, proposes))
	}

	// Every decision, commit and rollback must carry a trace that
	// resolves to at least one span on this same endpoint; fleet events
	// must name their replica when a proxy fans them in.
	for _, ev := range mine {
		if ev.Type == obs.EventOpen || ev.Type == obs.EventClose {
			continue
		}
		if ev.Trace == "" {
			return fail(fmt.Errorf("feed: %s event without trace: %+v", ev.Type, ev))
		}
		tr, err := c.Trace(ctx, ev.Trace)
		if err != nil {
			return fail(fmt.Errorf("feed: %s trace %s unresolvable: %w", ev.Type, ev.Trace, err))
		}
		if len(tr.Spans) == 0 {
			return fail(fmt.Errorf("feed: %s trace %s has no spans", ev.Type, ev.Trace))
		}
		if cluster && ev.Replica == "" {
			return fail(fmt.Errorf("feed: fleet event without replica label: %+v", ev))
		}
	}

	// The per-session stream must deliver the same events in sequence
	// order; after close it goes quiet, so drain what is buffered.
	var ownSeqs []uint64
drain:
	for range mine {
		select {
		case ev, ok := <-ownCh:
			if !ok {
				break drain
			}
			record("session", ev)
			if ev.Session != h.ID {
				return fail(fmt.Errorf("feed: session stream leaked session %q", ev.Session))
			}
			ownSeqs = append(ownSeqs, ev.Seq)
		case <-time.After(5 * time.Second):
			break drain
		}
	}
	if len(ownSeqs) < len(mine)-1 { // open may predate the subscription
		return fail(fmt.Errorf("feed: session stream saw %d of %d events", len(ownSeqs), len(mine)))
	}
	for i := 1; i < len(ownSeqs); i++ {
		if ownSeqs[i] <= ownSeqs[i-1] {
			return fail(fmt.Errorf("feed: session stream out of order: %v", ownSeqs))
		}
	}

	// The metrics page must stay valid Prometheus exposition with the
	// feed counters on it.
	text, err := c.Metrics(ctx)
	if err != nil {
		return fail(fmt.Errorf("feed: metrics: %w", err))
	}
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		return fail(fmt.Errorf("feed: metrics page not valid exposition: %w", err))
	}
	fmt.Printf("edfsmoke: feed ok (%d events traced, metrics page valid)\n", len(mine))
	return nil
}

// driveRecovery is the single-daemon durability phase: open a session,
// commit part of it, kill the edfd with SIGKILL mid-state, restart it on
// the same store directory, and require the committed admission state
// back — pending proposals dropped, further proposals deciding normally.
func driveRecovery(ctx context.Context, daemons *fleet, edfdPath, storeDir string, d *daemon) error {
	c := client.New("http://"+d.addr, nil)
	h, _, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 10, Deadline: 90, Period: 100}}),
	})
	if err != nil {
		return fmt.Errorf("recovery: open: %w", err)
	}
	for _, tk := range []edf.Task{
		{Name: "a", WCET: 20, Deadline: 150, Period: 200},
		{Name: "b", WCET: 5, Deadline: 40, Period: 50},
	} {
		if pr, err := h.Propose(ctx, service.ProposeRequest{Task: service.SporadicTask(tk)}); err != nil || !pr.Admitted {
			return fmt.Errorf("recovery: propose %s: %+v, %v", tk.Name, pr, err)
		}
	}
	if _, err := h.Commit(ctx); err != nil {
		return fmt.Errorf("recovery: commit: %w", err)
	}
	// A pending proposal the crash must discard.
	if pr, err := h.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "pend", WCET: 1, Deadline: 100, Period: 100}),
	}); err != nil || !pr.Admitted {
		return fmt.Errorf("recovery: pending propose: %+v, %v", pr, err)
	}

	// kill -9: no drain, no goodbye — the log on disk is all that's left.
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	fmt.Println("edfsmoke: killed edfd with SIGKILL, restarting on", storeDir)

	d2, err := daemons.start(ctx, "edfd", edfdPath, "-addr", "127.0.0.1:0", "-session-ttl", "10m",
		"-store-dir", storeDir, "-store-node", "edfd-smoke")
	if err != nil {
		return fmt.Errorf("recovery: restart: %w", err)
	}
	c2 := client.New("http://"+d2.addr, nil)
	if err := waitHealthy(ctx, c2); err != nil {
		return err
	}
	st, _, err := c2.Session(h.ID).State(ctx)
	if err != nil {
		return fmt.Errorf("recovery: session %s did not resume: %w", h.ID, err)
	}
	if st.Committed != 3 || st.Pending != 0 {
		return fmt.Errorf("recovery: resumed state committed=%d pending=%d, want 3/0", st.Committed, st.Pending)
	}
	if pr, err := c2.Session(h.ID).Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "post", WCET: 1, Deadline: 200, Period: 200}),
	}); err != nil || !pr.Admitted {
		return fmt.Errorf("recovery: post-restart propose: %+v, %v", pr, err)
	}
	fmt.Printf("edfsmoke: recovery ok (session %s resumed with %d committed after kill -9)\n", h.ID, st.Committed)
	return nil
}

// driveTakeover is the cluster durability phase: with live sessions on
// every replica, kill one owner and require the proxy to drain every
// session — the dead owner's via a takeover peer — with no client-visible
// error.
func driveTakeover(ctx context.Context, daemons *fleet, c *client.Client) error {
	const sessions = 6
	handles := make([]*client.Session, sessions)
	for i := range handles {
		h, _, err := c.OpenSession(ctx, service.SessionRequest{
			Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 1, Deadline: 400, Period: 500}}),
		})
		if err != nil {
			return fmt.Errorf("takeover: open %d: %w", i, err)
		}
		if pr, err := h.Propose(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "w", WCET: 2, Deadline: 300, Period: 300}),
		}); err != nil || !pr.Admitted {
			return fmt.Errorf("takeover: session %d propose: %+v, %v", i, pr, err)
		}
		if _, err := h.Commit(ctx); err != nil {
			return fmt.Errorf("takeover: session %d commit: %w", i, err)
		}
		handles[i] = h
	}
	_, rt, err := handles[0].StateRouted(ctx)
	if err != nil {
		return fmt.Errorf("takeover: owner lookup: %w", err)
	}
	owner := rt.Owner
	victim := daemons.byURL(owner)
	if victim == nil {
		return fmt.Errorf("takeover: owner %q is not a spawned daemon", owner)
	}
	_ = victim.cmd.Process.Kill()
	_ = victim.cmd.Wait()
	fmt.Println("edfsmoke: killed session owner", owner)

	tookOver := 0
	for i, h := range handles {
		pr, prt, err := h.ProposeRouted(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "x", WCET: 1, Deadline: 250, Period: 250}),
		})
		if err != nil {
			return fmt.Errorf("takeover: session %d after owner death: %w", i, err)
		}
		if !pr.Admitted || pr.Committed != 2 {
			return fmt.Errorf("takeover: session %d post-kill state: %+v", i, pr)
		}
		if prt.TakenOverFrom != "" {
			if prt.TakenOverFrom != owner {
				return fmt.Errorf("takeover: session %d taken over from %q, owner was %q", i, prt.TakenOverFrom, owner)
			}
			tookOver++
		}
		if err := h.Close(ctx); err != nil {
			return fmt.Errorf("takeover: session %d close: %w", i, err)
		}
	}
	if tookOver == 0 {
		return fmt.Errorf("takeover: no session reported takeover attribution despite a dead owner")
	}
	fmt.Printf("edfsmoke: takeover ok (%d sessions drained, %d taken over from %s)\n",
		sessions, tookOver, owner)
	return nil
}

// byURL finds the daemon behind a base URL like "http://127.0.0.1:port".
func (f *fleet) byURL(url string) *daemon {
	for _, d := range f.daemons {
		if "http://"+d.addr == url {
			return d
		}
	}
	return nil
}

// dumpStore prints the store directory listing and the tail of each log
// segment, so a recovery failure is diagnosable from CI output alone.
func dumpStore(w io.Writer, dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(w, "edfsmoke: store dir %s unreadable: %v\n", dir, err)
		return
	}
	fmt.Fprintf(w, "edfsmoke: --- store dir %s ---\n", dir)
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			fmt.Fprintf(w, "  %s (stat: %v)\n", e.Name(), err)
			continue
		}
		fmt.Fprintf(w, "  %s  %d bytes\n", e.Name(), info.Size())
		if strings.HasPrefix(e.Name(), "wal-") {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err == nil {
				const tail = 512
				if len(b) > tail {
					b = b[len(b)-tail:]
				}
				fmt.Fprintf(w, "  tail: %q\n", b)
			}
		}
	}
	fmt.Fprintln(w, "edfsmoke: --- end store dir ---")
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(ctx context.Context, c *client.Client) error {
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		} else if ctx.Err() != nil {
			return fmt.Errorf("daemon never became healthy: %w", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
