// Command benchmerge turns `go test -bench` output into a committed JSON
// trend file. It reads benchmark result lines from stdin and merges them
// into -out:
//
//	go test -bench . -benchmem ./internal/core/ | benchmerge -out BENCH_core.json
//
// The file keeps two sections. "baseline" is written only when the file
// does not yet contain one — it freezes the numbers of the first run so
// later runs can be compared against it. "current" is replaced on every
// invocation. -reset-baseline overwrites the baseline too, for
// re-anchoring after intentional performance changes.
//
// -gate pct turns the merge into a CI regression gate: after writing the
// file, every benchmark present in both sections is compared and the
// tool exits with status 2 when any current ns/op exceeds its frozen
// baseline by more than pct percent. Allocations gate harder: a
// benchmark whose baseline is 0 allocs/op fails on ANY allocation, and a
// 0 B/op baseline fails on ANY bytes (catching fractional allocations
// that amortize below one per op and round allocs/op down to zero); both
// checks are machine-independent, so they are stable across runner
// hardware. A non-zero alloc baseline fails past the same pct threshold.
// Wall-clock comparisons assume the baseline was frozen on comparable
// hardware — after a machine change, re-anchor with -reset-baseline.
//
// Only lines of the canonical benchmark form are consumed; everything
// else (PASS, ok, custom metrics on separate lines) is echoed to stderr
// untouched so the tool can sit at the end of a pipe without hiding the
// test outcome.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured cost.
type Metrics struct {
	// N is the number of iterations the benchmark ran.
	N int64 `json:"n"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra carries custom b.ReportMetric values (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Section is one snapshot of every benchmark.
type Section struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// File is the on-disk layout of BENCH_core.json.
type File struct {
	Schema   string   `json:"schema"`
	Baseline *Section `json:"baseline,omitempty"`
	Current  *Section `json:"current,omitempty"`
}

// benchLine matches "BenchmarkName-8  123  456 ns/op  [metrics...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// metricPair matches "12.5 unit" fragments of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+([^\s]+)`)

func main() {
	out := flag.String("out", "BENCH_core.json", "JSON trend file to update")
	reset := flag.Bool("reset-baseline", false, "overwrite the baseline section too")
	gate := flag.Float64("gate", 0, "fail (exit 2) when any current ns/op or allocs/op regresses more than this percentage vs the frozen baseline")
	flag.Parse()

	parsed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	if len(parsed.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchmerge: no benchmark lines on stdin")
		os.Exit(1)
	}
	merged, err := merge(*out, parsed, *reset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmerge: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), *out)
	if *gate > 0 {
		violations, checked := gateCheck(merged, *gate)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchmerge: GATE:", v)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "benchmerge: GATE FAILED: %d of %d benchmarks regressed more than %g%% vs the frozen baseline\n",
				len(violations), checked, *gate)
			os.Exit(2)
		}
		if checked == 0 {
			fmt.Fprintln(os.Stderr, "benchmerge: GATE: no benchmark exists in both baseline and current — nothing was checked")
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchmerge: GATE PASSED: %d benchmarks within %g%% of baseline\n", checked, *gate)
	}
}

// gateCheck compares current against baseline. Wall-clock regressions
// past pct percent fail; allocation regressions fail past the same
// threshold, except a 0-alloc baseline which fails on any allocation at
// all (the 0-alloc hot-path contract is exact, and allocation counts do
// not vary with runner hardware the way nanoseconds do).
func gateCheck(f *File, pct float64) (violations []string, checked int) {
	if f.Baseline == nil || f.Current == nil {
		return []string{"trend file is missing a baseline or current section"}, 0
	}
	names := make([]string, 0, len(f.Current.Benchmarks))
	for name := range f.Current.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := f.Baseline.Benchmarks[name]
		if !ok {
			continue // new benchmark: nothing frozen to compare against
		}
		cur := f.Current.Benchmarks[name]
		checked++
		if base.NsPerOp > 0 {
			if excess := 100 * (cur.NsPerOp - base.NsPerOp) / base.NsPerOp; excess > pct {
				violations = append(violations, fmt.Sprintf(
					"%s: %.0f ns/op is %.1f%% above the baseline %.0f ns/op (threshold %g%%)",
					name, cur.NsPerOp, excess, base.NsPerOp, pct))
			}
		}
		// A fractional allocation amortized below one op rounds allocs/op
		// down to 0 but still surfaces as bytes: a 0-byte baseline failing
		// on any bytes at all closes that blind spot with the same exact,
		// hardware-independent contract as the 0-alloc check.
		if base.BytesPerOp != nil && cur.BytesPerOp != nil {
			if b, c := *base.BytesPerOp, *cur.BytesPerOp; b == 0 && c > 0 {
				violations = append(violations, fmt.Sprintf(
					"%s: %.0f B/op on a frozen 0-byte baseline", name, c))
			}
		}
		if base.AllocsPerOp == nil || cur.AllocsPerOp == nil {
			continue
		}
		switch b, c := *base.AllocsPerOp, *cur.AllocsPerOp; {
		case b == 0 && c > 0:
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f allocs/op on a frozen 0-alloc baseline", name, c))
		case b > 0 && 100*(c-b)/b > pct:
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f allocs/op is %.1f%% above the baseline %.0f (threshold %g%%)",
				name, c, 100*(c-b)/b, b, pct))
		}
	}
	return violations, checked
}

// parse consumes benchmark lines and echoes the rest to stderr.
func parse(r *os.File) (*Section, error) {
	sec := &Section{Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		name := m[1]
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations of %s: %w", name, err)
		}
		met := Metrics{N: n}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch unit := pair[2]; unit {
			case "ns/op":
				met.NsPerOp = v
			case "B/op":
				met.BytesPerOp = &v
			case "allocs/op":
				met.AllocsPerOp = &v
			default:
				if met.Extra == nil {
					met.Extra = make(map[string]float64)
				}
				met.Extra[unit] = v
			}
		}
		sec.Benchmarks[name] = met
	}
	return sec, sc.Err()
}

// merge updates the trend file: current always, baseline only when absent
// (or when reset is requested). It returns the merged file for gating.
func merge(path string, parsed *Section, reset bool) (*File, error) {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f.Schema = "edf-bench/v1"
	if f.Baseline == nil || reset {
		f.Baseline = parsed
	}
	f.Current = parsed
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return nil, err
	}
	return &f, os.WriteFile(path, append(data, '\n'), 0o644)
}
