// Command benchmerge turns `go test -bench` output into a committed JSON
// trend file. It reads benchmark result lines from stdin and merges them
// into -out:
//
//	go test -bench . -benchmem ./internal/core/ | benchmerge -out BENCH_core.json
//
// The file keeps two sections. "baseline" is written only when the file
// does not yet contain one — it freezes the numbers of the first run
// (the pre-optimization state) so later runs can be compared against it.
// "current" is replaced on every invocation. -reset-baseline overwrites
// the baseline too, for re-anchoring after intentional regressions.
//
// Only lines of the canonical benchmark form are consumed; everything
// else (PASS, ok, custom metrics on separate lines) is echoed to stderr
// untouched so the tool can sit at the end of a pipe without hiding the
// test outcome.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured cost.
type Metrics struct {
	// N is the number of iterations the benchmark ran.
	N int64 `json:"n"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra carries custom b.ReportMetric values (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Section is one snapshot of every benchmark.
type Section struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// File is the on-disk layout of BENCH_core.json.
type File struct {
	Schema   string   `json:"schema"`
	Baseline *Section `json:"baseline,omitempty"`
	Current  *Section `json:"current,omitempty"`
}

// benchLine matches "BenchmarkName-8  123  456 ns/op  [metrics...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// metricPair matches "12.5 unit" fragments of a benchmark line.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+([^\s]+)`)

func main() {
	out := flag.String("out", "BENCH_core.json", "JSON trend file to update")
	reset := flag.Bool("reset-baseline", false, "overwrite the baseline section too")
	flag.Parse()

	parsed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	if len(parsed.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchmerge: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := merge(*out, parsed, *reset); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmerge: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), *out)
}

// parse consumes benchmark lines and echoes the rest to stderr.
func parse(r *os.File) (*Section, error) {
	sec := &Section{Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		name := m[1]
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations of %s: %w", name, err)
		}
		met := Metrics{N: n}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch unit := pair[2]; unit {
			case "ns/op":
				met.NsPerOp = v
			case "B/op":
				met.BytesPerOp = &v
			case "allocs/op":
				met.AllocsPerOp = &v
			default:
				if met.Extra == nil {
					met.Extra = make(map[string]float64)
				}
				met.Extra[unit] = v
			}
		}
		sec.Benchmarks[name] = met
	}
	return sec, sc.Err()
}

// merge updates the trend file: current always, baseline only when absent
// (or when reset is requested).
func merge(path string, parsed *Section, reset bool) error {
	var f File
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Schema = "edf-bench/v1"
	if f.Baseline == nil || reset {
		f.Baseline = parsed
	}
	f.Current = parsed
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
