package edf_test

import (
	"math/rand"
	"testing"

	edf "repro"
)

func demoSet() edf.TaskSet {
	return edf.TaskSet{
		{Name: "a", WCET: 2, Deadline: 8, Period: 10},
		{Name: "b", WCET: 5, Deadline: 20, Period: 25},
		{Name: "c", WCET: 9, Deadline: 50, Period: 50},
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	ts := demoSet()
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	res := edf.Exact(ts)
	if res.Verdict != edf.Feasible {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Iterations < int64(len(ts)) {
		t.Errorf("iterations %d below task count", res.Iterations)
	}
	for _, r := range []edf.Result{
		edf.Devi(ts),
		edf.SuperPos(ts, 2, edf.Options{}),
		edf.DynamicError(ts, edf.Options{}),
		edf.AllApprox(ts, edf.Options{}),
		edf.ProcessorDemand(ts, edf.Options{}),
		edf.QPA(ts, edf.Options{}),
	} {
		if r.Verdict != edf.Feasible {
			t.Errorf("test verdict %v, want feasible", r.Verdict)
		}
	}
}

func TestFacadeBounds(t *testing.T) {
	ts := demoSet()
	g, okG := edf.GeorgeBound(ts)
	s, okS := edf.SuperpositionBound(ts)
	if !okG || !okS {
		t.Fatalf("bounds not available")
	}
	if s > g && s > ts.MaxDeadline() {
		t.Errorf("superposition %d above george %d", s, g)
	}
	if _, _, ok := edf.BestBound(ts); !ok {
		t.Error("best bound missing")
	}
	if l, ok := edf.BusyPeriod(ts); !ok || l <= 0 {
		t.Errorf("busy period %d,%v", l, ok)
	}
	if h, ok := edf.Hyperperiod(ts); !ok || h != 50 {
		t.Errorf("hyperperiod %d,%v, want 50", h, ok)
	}
	if edf.Dbf(ts, 8) != 2 {
		t.Errorf("dbf(8) = %d", edf.Dbf(ts, 8))
	}
}

func TestFacadeSimulateAgreesWithExact(t *testing.T) {
	ts := demoSet()
	h, ok := edf.SimHorizon(ts)
	if !ok {
		t.Fatal("no horizon")
	}
	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: h})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed {
		t.Error("simulation missed a deadline on a feasible set")
	}
}

func TestFacadeGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts, err := edf.Generate(edf.GenConfig{
		N: 12, Utilization: 0.85, PeriodMin: 100, PeriodMax: 10000, GapMean: 0.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 12 {
		t.Fatalf("n = %d", len(ts))
	}
	u := edf.Utilization(ts)
	if u < 0.8 || u > 0.9 {
		t.Errorf("U = %v", u)
	}
	shares := edf.UUniFast(5, 0.5, rng)
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.499 || sum > 0.501 {
		t.Errorf("UUniFast sum %v", sum)
	}
}

func TestFacadeExamples(t *testing.T) {
	exs := edf.Examples()
	if len(exs) != 5 {
		t.Fatalf("examples: %d", len(exs))
	}
	if _, ok := edf.ExampleByName("gap"); !ok {
		t.Error("gap example missing")
	}
	if _, ok := edf.ExampleByName("nope"); ok {
		t.Error("bogus example found")
	}
}

func TestFacadeEventStreams(t *testing.T) {
	tasks := []edf.EventTask{
		{Name: "periodic", Stream: edf.PeriodicStream(100), WCET: 10, Deadline: 50},
		{Name: "burst", Stream: edf.BurstStream(1000, 3, 10), WCET: 20, Deadline: 200},
	}
	res := edf.EventAllApprox(tasks, edf.Options{})
	if res.Verdict != edf.Feasible {
		t.Fatalf("verdict %v", res.Verdict)
	}
	pd := edf.EventProcessorDemand(tasks, edf.Options{})
	if pd.Verdict != edf.Feasible {
		t.Fatalf("pd verdict %v", pd.Verdict)
	}
	dyn := edf.EventDynamicError(tasks, edf.Options{})
	if dyn.Verdict != edf.Feasible {
		t.Fatalf("dynamic verdict %v", dyn.Verdict)
	}
	sp := edf.EventSuperPos(tasks, 2, edf.Options{})
	if sp.Verdict == edf.Infeasible {
		t.Fatalf("superpos verdict %v", sp.Verdict)
	}
}

func TestFacadeInfeasibleSet(t *testing.T) {
	ts := edf.TaskSet{
		{WCET: 3, Deadline: 4, Period: 10},
		{WCET: 4, Deadline: 5, Period: 10},
		{WCET: 3, Deadline: 6, Period: 10},
	}
	for name, r := range map[string]edf.Result{
		"exact":   edf.Exact(ts),
		"pd":      edf.ProcessorDemand(ts, edf.Options{}),
		"qpa":     edf.QPA(ts, edf.Options{}),
		"dynamic": edf.DynamicError(ts, edf.Options{}),
	} {
		if r.Verdict != edf.Infeasible {
			t.Errorf("%s verdict %v, want infeasible", name, r.Verdict)
		}
	}
	h, _ := edf.SimHorizon(ts)
	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: h})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Missed {
		t.Error("simulation met all deadlines on an infeasible set")
	}
}

func TestFacadeSuperPosEpsilon(t *testing.T) {
	ts := demoSet()
	r := edf.SuperPosEpsilon(ts, 0.25, edf.Options{})
	if r.MaxLevel != 4 {
		t.Errorf("epsilon 0.25 -> level %d, want 4", r.MaxLevel)
	}
	r = edf.SuperPosEpsilon(ts, 0.3, edf.Options{})
	if r.MaxLevel != 4 { // ceil(1/0.3) = 4
		t.Errorf("epsilon 0.3 -> level %d, want 4", r.MaxLevel)
	}
}
