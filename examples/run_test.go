// Package examples_test builds and runs every example end to end, keeping
// the documented entry points working.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runExample executes one example via `go run` from the repository root.
func runExample(t *testing.T, name string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./examples/"+name)
	cmd.Dir = filepath.Dir(wd) // examples/ -> repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{"exact verdict: feasible", "test ladder", "demand bound function", "simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q", want)
		}
	}
}

func TestAvionics(t *testing.T) {
	out := runExample(t, "avionics")
	for _, want := range []string{"gap", "FAILED", "weapon_release", "first 200 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("avionics output missing %q", want)
		}
	}
}

func TestAdmission(t *testing.T) {
	out := runExample(t, "admission")
	for _, want := range []string{
		"devi (sufficient)", "cascade (exact)",
		"rolled back 2 staged task(s)", "deadline miss: false",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("admission output missing %q", want)
		}
	}
}

func TestServer(t *testing.T) {
	out := runExample(t, "server")
	for _, want := range []string{
		"edfd serving on", "cached true", "batch: 16 jobs",
		"rollback dropped 1", "edfd_cache_hits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("server output missing %q", want)
		}
	}
}

func TestEventstream(t *testing.T) {
	out := runExample(t, "eventstream")
	for _, want := range []string{"eta(", "all-approximated (exact)", "sensitivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("eventstream output missing %q", want)
		}
	}
}

func TestMargin(t *testing.T) {
	out := runExample(t, "margin")
	for _, want := range []string{"critical scaling factor", "WCRT", "exact phased analysis says feasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("margin output missing %q", want)
		}
	}
}
