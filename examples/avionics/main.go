// Avionics: analyze the Generic Avionics Platform workload (Locke, Vogel,
// Mesler) and the other literature sets of the paper's Table 1, showing
// where the classic sufficient test fails and how much cheaper the paper's
// exact tests are than the processor demand test.
package main

import (
	"fmt"

	edf "repro"
)

func main() {
	fmt.Println("Literature task sets (paper Table 1)")
	fmt.Println()
	for _, ex := range edf.Examples() {
		ts := ex.Set
		devi := edf.Devi(ts)
		dyn := edf.DynamicError(ts, edf.Options{})
		all := edf.AllApprox(ts, edf.Options{})
		pd := edf.ProcessorDemand(ts, edf.Options{})

		deviCol := fmt.Sprint(devi.Iterations)
		if devi.Verdict != edf.Feasible {
			deviCol = "FAILED"
		}
		fmt.Printf("%-10s n=%2d U=%.3f  Devi=%-7s Dynamic=%-4d AllApprox=%-4d ProcDemand=%d\n",
			ex.Name, len(ts), edf.Utilization(ts), deviCol,
			dyn.Iterations, all.Iterations, pd.Iterations)
	}

	// Deep dive on GAP: per-task view and schedule replay of the first
	// 200 ms (the weapon-release deadline is 40x shorter than its period,
	// the classic hard case for utilization-based arguments).
	ex, _ := edf.ExampleByName("gap")
	ts := ex.Set
	fmt.Println("\nGeneric Avionics Platform, per task (microseconds):")
	for _, t := range ts {
		fmt.Printf("  %-18s C=%7d D=%7d T=%7d  (u=%.3f)\n",
			t.Name, t.WCET, t.Deadline, t.Period, t.UtilizationFloat())
	}

	res := edf.Exact(ts)
	fmt.Printf("\nexact verdict: %s in %d intervals", res.Verdict, res.Iterations)
	pd := edf.ProcessorDemand(ts, edf.Options{})
	fmt.Printf(" (processor demand needs %d)\n", pd.Iterations)

	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: 200000, RecordTrace: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfirst 200 ms of the EDF schedule: %d segments, %d jobs completed, miss=%v\n",
		len(rep.Trace), rep.JobsCompleted, rep.Missed)
	fmt.Println("first ten segments:")
	for i, seg := range rep.Trace {
		if i == 10 {
			break
		}
		name := "idle"
		if !seg.Idle() {
			name = ts[seg.Task].Name
		}
		fmt.Printf("  [%6d,%6d) %s\n", seg.Start, seg.End, name)
	}
}
