// Margin: design-space exploration of an ECU task set with the sensitivity
// and response-time analyses layered on the paper's fast exact tests.
//
// Every query below evaluates an exact feasibility test tens of times, so
// the 10-200x cheaper exact tests the paper contributes are what make this
// kind of interactive exploration practical.
package main

import (
	"fmt"

	edf "repro"
)

func main() {
	// An engine controller workload: crank-synchronous control, injector
	// sequencing, knock monitoring, CAN handling, diagnostics. Times in
	// microseconds.
	ts := edf.TaskSet{
		{Name: "crank-ctrl", WCET: 900, Deadline: 2000, Period: 5000},
		{Name: "injector", WCET: 1200, Deadline: 4000, Period: 10000},
		{Name: "knock-mon", WCET: 1500, Deadline: 9000, Period: 10000},
		{Name: "can-rx", WCET: 800, Deadline: 5000, Period: 20000},
		{Name: "lambda", WCET: 2500, Deadline: 20000, Period: 50000},
		{Name: "diag", WCET: 6000, Deadline: 80000, Period: 100000},
	}
	if err := ts.Validate(); err != nil {
		panic(err)
	}
	res := edf.Exact(ts)
	fmt.Printf("base workload: %d tasks, U = %.1f%%, verdict %s (%d intervals)\n\n",
		len(ts), 100*edf.Utilization(ts), res.Verdict, res.Iterations)

	// 1. Latency: worst-case response time per task (Spuri's analysis).
	wcrts, ok := edf.WCRTAll(ts, edf.ResponseOptions{})
	if !ok {
		panic("response analysis failed")
	}
	// 2. Robustness: how much each WCET may grow alone.
	slack, err := edf.WCETSlack(ts, nil)
	if err != nil {
		panic(err)
	}
	// 3. Deadline headroom: the tightest deadline each task could serve.
	fmt.Println("task            C      D      WCRT   D-WCRT  C-slack  minD")
	for i, t := range ts {
		minD, err := edf.MinDeadline(ts, i, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s %6d %6d %6d %7d %8d %6d\n",
			t.Name, t.WCET, t.Deadline, wcrts[i], t.Deadline-wcrts[i], slack[i], minD)
	}

	// 4. Platform headroom: the critical scaling factor answers "how much
	// slower may the CPU clock get before a deadline breaks".
	num, err := edf.CriticalScaling(ts, 1000, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncritical scaling factor: %.3f (all WCETs may grow %.1f%%)\n",
		float64(num)/1000, 100*(float64(num)/1000-1))

	// 5. What-if: consolidate a new monitoring task onto the ECU and find
	// the largest budget it can get at a 5 ms period, 3 ms deadline.
	probe := append(ts.Clone(), edf.Task{
		Name: "new-monitor", WCET: 1, Deadline: 3000, Period: 5000,
	})
	maxC, err := edf.MaxWCET(probe, len(probe)-1, nil)
	if err != nil {
		fmt.Println("\nno budget available for new-monitor")
	} else {
		fmt.Printf("\nnew-monitor at T=5ms, D=3ms can receive up to C=%dus\n", maxC)
	}

	// 6. Phasing: with explicit offsets, an overloaded variant can still
	// be schedulable even though the synchronous (sporadic) analysis must
	// reject it.
	tight := edf.TaskSet{
		{Name: "ping", WCET: 1000, Deadline: 1000, Period: 2000, Phase: 0},
		{Name: "pong", WCET: 1000, Deadline: 1000, Period: 2000, Phase: 1000},
	}
	sync := edf.AsyncSufficient(tight, edf.Options{})
	exact, err := edf.AsyncExact(tight, edf.AsyncOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nphased ping/pong: synchronous reduction says %s, exact phased analysis says %s\n",
		sync.Verdict, exact.Verdict)
}
