// Quickstart: build a small task set, run every feasibility test, and
// compare their verdicts and costs.
package main

import (
	"fmt"

	edf "repro"
)

func main() {
	// A control application: three periodic control loops, a logging task
	// and a watchdog with a deadline well below its period.
	ts := edf.TaskSet{
		{Name: "inner-loop", WCET: 2, Deadline: 8, Period: 10},
		{Name: "outer-loop", WCET: 5, Deadline: 20, Period: 25},
		{Name: "supervisor", WCET: 9, Deadline: 50, Period: 50},
		{Name: "logger", WCET: 12, Deadline: 90, Period: 100},
		{Name: "watchdog", WCET: 4, Deadline: 30, Period: 300},
	}
	if err := ts.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("analyzing %d tasks, utilization %.1f%%\n\n", len(ts), 100*edf.Utilization(ts))

	// The one-call answer: the all-approximated test is exact and fast.
	res := edf.Exact(ts)
	fmt.Printf("exact verdict: %s (%d test intervals, %d revisions)\n\n",
		res.Verdict, res.Iterations, res.Revisions)

	// The whole test ladder, from the cheapest sufficient test to the
	// classic exact test.
	fmt.Println("test ladder:")
	for _, tc := range []struct {
		name string
		res  edf.Result
	}{
		{"liu-layland (sufficient)", edf.LiuLayland(ts)},
		{"devi (sufficient)", edf.Devi(ts)},
		{"superpos(3) (sufficient)", edf.SuperPos(ts, 3, edf.Options{})},
		{"dynamic error (exact)", edf.DynamicError(ts, edf.Options{})},
		{"all-approximated (exact)", edf.AllApprox(ts, edf.Options{})},
		{"processor demand (exact)", edf.ProcessorDemand(ts, edf.Options{})},
	} {
		fmt.Printf("  %-28s %-13s %4d intervals\n", tc.name, tc.res.Verdict, tc.res.Iterations)
	}

	// Inspect the demand bound function around the watchdog deadline.
	fmt.Println("\ndemand bound function:")
	for _, I := range []int64{8, 20, 30, 50, 90, 200} {
		fmt.Printf("  dbf(%3d) = %3d  (capacity %3d)\n", I, edf.Dbf(ts, I), I)
	}

	// Replay the schedule to see the verdict hold in a concrete run.
	horizon, _ := edf.SimHorizon(ts)
	rep, err := edf.Simulate(ts, edf.SimOptions{Horizon: horizon})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsimulated %d time units: %d jobs released, %d completed, miss=%v\n",
		rep.EndTime, rep.JobsReleased, rep.JobsCompleted, rep.Missed)
}
