// Admission: online admission control for a mixed-criticality runtime.
//
// Requests to add a sporadic task stream arrive one by one; each request is
// admitted only if the resulting task set stays EDF-feasible. The paper's
// motivation for fast exact tests is exactly this use case: a sufficient
// test (Devi) rejects too many profitable requests at high utilization, the
// classic exact test (processor demand) is too slow for an admission path,
// and the cheap-first cascade gives the exact answer at near-Devi cost.
//
// The admission path runs through edf.Admission, the same concurrency-safe
// controller behind the edfd service's session endpoints: propose stages a
// task if the grown set stays feasible, commit makes it permanent, and
// rollback turns a group of proposals into an all-or-nothing transaction.
package main

import (
	"fmt"
	"math/rand"

	edf "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// The production admitter: exact cheap-first verdicts, O(1)
	// utilization overload gate, transactional staging.
	controller, err := edf.NewAdmission(edf.AdmissionConfig{
		Options: edf.Options{Arithmetic: edf.ArithFloat64},
	})
	if err != nil {
		panic(err)
	}

	// Transactional admission first: a burst group lands only as a whole.
	// Each member alone is admissible, but the third overloads the short
	// 12-unit deadline window, so the controller rolls the whole group
	// back — no partial burst is left behind.
	staged := 0
	for i := range 3 {
		out, err := controller.Propose(edf.Task{
			Name: fmt.Sprintf("burst-%d", i), WCET: 5, Deadline: 12, Period: 100,
		})
		if err != nil {
			panic(err)
		}
		if !out.Admitted {
			break
		}
		staged++
	}
	if staged == 3 {
		controller.Commit()
		fmt.Println("burst group of 3 admitted atomically")
	} else {
		dropped := controller.Rollback().Moved
		fmt.Printf("burst group rejected at member %d; rolled back %d staged task(s)\n\n",
			staged+1, dropped)
	}

	type tally struct {
		admitted, rejected int
		intervals          int64
	}
	var devi, capped, cascade tally

	fmt.Println("online admission of 60 task requests (exact vs sufficient policies)")
	fmt.Println()

	for req := range 60 {
		t := randomRequest(rng, req)
		accepted, _, _ := controller.Snapshot()
		candidate := append(accepted.Tasks, t)

		// Policy 1: Devi (what a sufficient-test-based admitter would do).
		dr := edf.Devi(candidate)
		devi.intervals += dr.Iterations
		if dr.Verdict == edf.Feasible {
			devi.admitted++
		} else {
			devi.rejected++
		}

		// Policy 2: dynamic test with a strict level cap: bounded latency,
		// still far better acceptance than Devi.
		cr := edf.DynamicError(candidate, edf.Options{
			Arithmetic: edf.ArithFloat64, MaxLevel: 8,
		})
		capped.intervals += cr.Iterations
		if cr.Verdict == edf.Feasible {
			capped.admitted++
		} else {
			capped.rejected++
		}

		// Policy 3 actually admits: the controller's cascade verdict.
		out, err := controller.Propose(t)
		if err != nil {
			panic(err)
		}
		cascade.intervals += out.Result.Iterations
		if out.Admitted {
			cascade.admitted++
			controller.Commit() // online admission: each accepted task is final
		} else {
			cascade.rejected++
		}
	}

	committed, _, util := controller.Snapshot()
	fmt.Printf("final task set: %d tasks, utilization %.1f%%\n\n", committed.Len(), 100*util)
	fmt.Printf("%-22s %9s %9s %16s\n", "policy", "admitted", "rejected", "total intervals")
	fmt.Printf("%-22s %9d %9d %16d\n", "devi (sufficient)", devi.admitted, devi.rejected, devi.intervals)
	fmt.Printf("%-22s %9d %9d %16d\n", "dynamic, level<=8", capped.admitted, capped.rejected, capped.intervals)
	fmt.Printf("%-22s %9d %9d %16d\n", "cascade (exact)", cascade.admitted, cascade.rejected, cascade.intervals)

	// Show that the admitted configuration really holds up in a replay.
	final, _, _ := controller.Snapshot()
	horizon, _ := edf.SimHorizon(final.Tasks)
	rep, err := edf.Simulate(final.Tasks, edf.SimOptions{Horizon: horizon})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nreplay over %d time units: %d jobs, deadline miss: %v\n",
		rep.EndTime, rep.JobsReleased, rep.Missed)
}

// randomRequest models arriving workload: mostly relaxed tasks with an
// occasional tight-deadline burst handler (the shape Devi's test is weakest
// on).
func randomRequest(rng *rand.Rand, id int) edf.Task {
	T := int64(1000 * (1 + rng.Intn(100)))
	u := 0.01 + 0.04*rng.Float64()
	C := max(int64(u*float64(T)), 1)
	D := T
	if rng.Intn(4) == 0 { // tight deadline: burst handler
		D = max(4*C, T/20)
		if D > T {
			D = T
		}
	}
	return edf.Task{
		Name: fmt.Sprintf("req-%02d", id), WCET: C, Deadline: D, Period: T,
	}
}
