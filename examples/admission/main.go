// Admission: online admission control for a mixed-criticality runtime.
//
// Requests to add a sporadic task stream arrive one by one; each request is
// admitted only if the resulting task set stays EDF-feasible. The paper's
// motivation for fast exact tests is exactly this use case: a sufficient
// test (Devi) rejects too many profitable requests at high utilization, the
// classic exact test (processor demand) is too slow for an admission path,
// and the all-approximated test gives the exact answer at near-Devi cost.
// The dynamic test with a level cap additionally bounds the worst-case
// admission latency (Section 4.1 of the paper).
package main

import (
	"fmt"
	"math/rand"

	edf "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	var accepted edf.TaskSet
	type tally struct {
		admitted, rejected int
		intervals          int64
	}
	var devi, allapprox, capped tally

	fmt.Println("online admission of 60 task requests (exact vs sufficient policies)")
	fmt.Println()

	for req := range 60 {
		t := randomRequest(rng, req)
		candidate := append(accepted.Clone(), t)

		// Policy 1: Devi (what a sufficient-test-based admitter would do).
		dr := edf.Devi(candidate)
		devi.intervals += dr.Iterations
		if dr.Verdict == edf.Feasible {
			devi.admitted++
		} else {
			devi.rejected++
		}

		// Policy 2: exact all-approximated test (the paper's proposal).
		ar := edf.AllApprox(candidate, edf.Options{Arithmetic: edf.ArithFloat64})
		allapprox.intervals += ar.Iterations

		// Policy 3: dynamic test with a strict level cap: bounded latency,
		// still far better acceptance than Devi.
		cr := edf.DynamicError(candidate, edf.Options{
			Arithmetic: edf.ArithFloat64, MaxLevel: 8,
		})
		capped.intervals += cr.Iterations
		if cr.Verdict == edf.Feasible {
			capped.admitted++
		} else {
			capped.rejected++
		}

		// The system actually admits with the exact test.
		if ar.Verdict == edf.Feasible {
			allapprox.admitted++
			accepted = candidate
		} else {
			allapprox.rejected++
		}
	}

	fmt.Printf("final task set: %d tasks, utilization %.1f%%\n\n",
		len(accepted), 100*edf.Utilization(accepted))
	fmt.Printf("%-22s %9s %9s %16s\n", "policy", "admitted", "rejected", "total intervals")
	fmt.Printf("%-22s %9d %9d %16d\n", "devi (sufficient)", devi.admitted, devi.rejected, devi.intervals)
	fmt.Printf("%-22s %9d %9d %16d\n", "dynamic, level<=8", capped.admitted, capped.rejected, capped.intervals)
	fmt.Printf("%-22s %9d %9d %16d\n", "all-approx (exact)", allapprox.admitted, allapprox.rejected, allapprox.intervals)

	// Show that the admitted configuration really holds up in a replay.
	horizon, _ := edf.SimHorizon(accepted)
	rep, err := edf.Simulate(accepted, edf.SimOptions{Horizon: horizon})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nreplay over %d time units: %d jobs, deadline miss: %v\n",
		rep.EndTime, rep.JobsReleased, rep.Missed)
}

// randomRequest models arriving workload: mostly relaxed tasks with an
// occasional tight-deadline burst handler (the shape Devi's test is weakest
// on).
func randomRequest(rng *rand.Rand, id int) edf.Task {
	T := int64(1000 * (1 + rng.Intn(100)))
	u := 0.01 + 0.04*rng.Float64()
	C := max(int64(u*float64(T)), 1)
	D := T
	if rng.Intn(4) == 0 { // tight deadline: burst handler
		D = max(4*C, T/20)
		if D > T {
			D = T
		}
	}
	return edf.Task{
		Name: fmt.Sprintf("req-%02d", id), WCET: C, Deadline: D, Period: T,
	}
}
