// Eventstream: feasibility analysis of a CAN-gateway style workload in the
// Gresser event stream model — the activation model the paper names as the
// extension target of its tests (Sections 2 and 3.6).
//
// A gateway forwards frames from two buses: one periodic sensor flow, one
// bursty alarm flow (five frames back to back, repeating slowly) plus a
// one-shot boot message. Bursts are what the piecewise-linear real-time
// calculus approximation handles poorly (Figure 4b of the paper); the
// superposition machinery analyzes them exactly by treating every element
// of the burst as its own demand source.
package main

import (
	"fmt"

	edf "repro"
)

func main() {
	tasks := []edf.EventTask{
		{
			Name:     "sensor-forward",
			Stream:   edf.PeriodicStream(500), // one frame every 500 us
			WCET:     120,
			Deadline: 400,
		},
		{
			Name:     "alarm-burst",
			Stream:   edf.BurstStream(20000, 5, 600), // 5 frames, 600 us apart, every 20 ms
			WCET:     150,
			Deadline: 900,
		},
		{
			Name:     "diagnostics",
			Stream:   edf.PeriodicStream(10000),
			WCET:     800,
			Deadline: 5000,
		},
		{
			// Boot-time configuration message: a single event at time zero.
			Name:     "boot-config",
			Stream:   edf.EventStream{{Cycle: 0, Offset: 0}},
			WCET:     400,
			Deadline: 2000,
		},
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			panic(err)
		}
	}

	fmt.Println("event-driven gateway workload:")
	for _, t := range tasks {
		fmt.Printf("  %-15s C=%4d D=%5d stream=%d element(s)\n",
			t.Name, t.WCET, t.Deadline, len(t.Stream))
	}

	fmt.Println("\nevent bound function of the alarm burst (events per interval):")
	alarm := tasks[1].Stream
	for _, I := range []int64{0, 600, 1200, 2400, 20000, 22400} {
		fmt.Printf("  eta(%5d) = %d\n", I, alarm.Events(I))
	}

	fmt.Println("\nfeasibility (same algorithms as for sporadic tasks):")
	for _, tc := range []struct {
		name string
		res  edf.Result
	}{
		{"superpos(1) [= Devi]", edf.EventSuperPos(tasks, 1, edf.Options{})},
		{"superpos(4)", edf.EventSuperPos(tasks, 4, edf.Options{})},
		{"dynamic error (exact)", edf.EventDynamicError(tasks, edf.Options{})},
		{"all-approximated (exact)", edf.EventAllApprox(tasks, edf.Options{})},
		{"processor demand (exact)", edf.EventProcessorDemand(tasks, edf.Options{})},
	} {
		fmt.Printf("  %-26s %-13s %4d intervals\n", tc.name, tc.res.Verdict, tc.res.Iterations)
	}

	// Tighten the alarm deadline until the set becomes infeasible to find
	// the exact breaking point.
	fmt.Println("\nalarm deadline sensitivity (exact all-approximated test):")
	for _, d := range []int64{900, 700, 500, 450, 400, 350} {
		probe := make([]edf.EventTask, len(tasks))
		copy(probe, tasks)
		probe[1].Deadline = d
		res := edf.EventAllApprox(probe, edf.Options{})
		fmt.Printf("  D(alarm)=%4d -> %s\n", d, res.Verdict)
	}
}
