// Server: the edfd feasibility service driven end to end, in process.
//
// It boots the HTTP daemon on a random local port, then walks the three
// pillars through the typed client: a stateless analysis (twice, to show
// the content-addressed cache answering the repeat), a parallel batch
// over a fleet of generated task sets, and a stateful admission session
// with propose/commit/rollback. The same flows work from any HTTP client
// — see the README for the curl equivalents.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	// Boot the daemon on a random port, exactly as cmd/edfd would.
	srv := edf.NewService(edf.ServiceConfig{CacheCapacity: 1024})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())

	base := "http://" + ln.Addr().String()
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	check(c.Healthz(ctx))
	fmt.Printf("edfd serving on %s\n\n", base)

	// Pillar 1+2: stateless analysis, content-addressed caching.
	ts := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
		{Name: "log", WCET: 10, Deadline: 80, Period: 100},
	}
	first, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "demo", Workload: edf.SporadicWorkload(ts)})
	check(err)
	fmt.Printf("analyze %q: %s in %d intervals (wall %s, cached %v)\n",
		first.Name, first.Result.Verdict, first.Result.Iterations,
		time.Duration(first.WallNS), first.Cached)
	again, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "demo", Workload: edf.SporadicWorkload(ts)})
	check(err)
	fmt.Printf("analyze %q again: %s (cached %v, fingerprint %.12s...)\n\n",
		again.Name, again.Result.Verdict, again.Cached, again.Fingerprint)

	// The same endpoint speaks the Gresser event-stream model: the
	// workload's "model" discriminator routes it to the event-capable
	// analyzers, and its results live in their own fingerprint domain.
	ev := []edf.EventTask{
		{Name: "periodic", WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
		{Name: "burst", WCET: 1, Deadline: 24, Stream: edf.BurstStream(50, 3, 4)},
	}
	evResp, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "demo-events", Workload: edf.EventWorkload(ev)})
	check(err)
	fmt.Printf("analyze %q (model %s): %s via %s (fingerprint %.12s...)\n\n",
		evResp.Name, evResp.Model, evResp.Result.Verdict, evResp.Analyzer, evResp.Fingerprint)

	// A batch of generated sets fans over the server's worker pool.
	rng := rand.New(rand.NewSource(42))
	batch := service.BatchRequest{Analyzers: []string{"devi", "cascade"}}
	for len(batch.Sets) < 8 {
		set, err := edf.Generate(edf.GenConfig{
			N: 12, Utilization: 0.85,
			PeriodMin: 100, PeriodMax: 10000, GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		batch.Sets = append(batch.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("gen-%d", len(batch.Sets)), Workload: edf.SporadicWorkload(set),
		})
	}
	bresp, _, err := c.Batch(ctx, batch)
	check(err)
	feasible := 0
	for _, jr := range bresp.Results {
		if jr.Analyzer == "cascade" && jr.Result.Verdict == "feasible" {
			feasible++
		}
	}
	fmt.Printf("batch: %d jobs (%d sets x 2 analyzers), %d/%d sets exactly feasible\n\n",
		len(bresp.Results), len(batch.Sets), feasible, len(batch.Sets))

	// Pillar 3: a stateful admission session.
	sess, state, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "base", WCET: 10, Deadline: 90, Period: 100}}),
	})
	check(err)
	fmt.Printf("session %.8s...: model %s, analyzer %s, %d committed, U = %.2f\n",
		state.ID, state.Model, state.Analyzer, state.Committed, state.Utilization)
	admitted, rejected := 0, 0
	for i := range 10 {
		T := int64(500 * (1 + rng.Intn(20)))
		resp, err := sess.Propose(ctx, service.ProposeRequest{Task: service.SporadicTask(edf.Task{
			Name: fmt.Sprintf("job-%02d", i), WCET: max(T/12, 1), Deadline: T, Period: T,
		})})
		check(err)
		if resp.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	// The bulk endpoint decides a whole arrival burst in one round trip,
	// each task seeing the ones staged before it.
	var burst []service.WorkloadTask
	for i := range 10 {
		T := int64(500 * (1 + rng.Intn(20)))
		burst = append(burst, service.SporadicTask(edf.Task{
			Name: fmt.Sprintf("bulk-%02d", i), WCET: max(T/12, 1), Deadline: T, Period: T,
		}))
	}
	bulk, err := sess.ProposeBatch(ctx, service.ProposeBatchRequest{Tasks: burst})
	check(err)
	for _, r := range bulk.Results {
		if r.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	commit, err := sess.Commit(ctx)
	check(err)
	fmt.Printf("session admitted %d, rejected %d; committed %d tasks at U = %.2f\n",
		admitted, rejected, commit.Committed, commit.Utilization)

	// Rollback demo: stage a task, discard it, state reverts.
	_, err = sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "tentative", WCET: 1, Deadline: 1000, Period: 1000}),
	})
	check(err)
	rb, err := sess.Rollback(ctx)
	check(err)
	fmt.Printf("rollback dropped %d staged task(s); still %d committed\n\n",
		rb.Moved, rb.Committed)

	// The metrics page summarizes everything that just happened.
	page, err := c.Metrics(ctx)
	check(err)
	fmt.Println("selected metrics:")
	for _, line := range strings.Split(strings.TrimSpace(page), "\n") {
		for _, want := range []string{"cache_hit", "analyses_total", "batch_jobs", "session"} {
			if strings.Contains(line, want) {
				fmt.Println(" ", line)
				break
			}
		}
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
