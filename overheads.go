package edf

import "repro/internal/core"

// Overheads configures the practical extensions of Section 3.5 (adopted
// from Devi into the superposition framework): context-switch cost,
// priority-ceiling/SRP blocking from per-task critical sections
// (Task.CriticalSection) and self-suspension (Task.SelfSuspension).
type Overheads = core.Overheads

// InflateOverheads returns a copy of the set with context-switch and
// self-suspension charges folded into the WCETs.
func InflateOverheads(ts TaskSet, ov Overheads) TaskSet { return core.InflateOverheads(ts, ov) }

// SRPBlocking returns the stack-resource-policy blocking function
// B(I) = max{CS_j : D_j > I} of the set (nil when no task declares a
// critical section).
func SRPBlocking(ts TaskSet) func(int64) int64 { return core.SRPBlocking(ts) }

// AllApproxWithOverheads runs the all-approximated test with overheads and
// SRP blocking folded in; exact for the blocking-extended criterion
// dbf(I) <= I - B(I).
func AllApproxWithOverheads(ts TaskSet, ov Overheads, opt Options) Result {
	return core.AllApproxWithOverheads(ts, ov, opt)
}

// DynamicErrorWithOverheads runs the dynamic error test with overheads and
// SRP blocking folded in.
func DynamicErrorWithOverheads(ts TaskSet, ov Overheads, opt Options) Result {
	return core.DynamicErrorWithOverheads(ts, ov, opt)
}

// ProcessorDemandWithOverheads runs the processor demand test against the
// blocking-extended criterion with a correspondingly widened bound.
func ProcessorDemandWithOverheads(ts TaskSet, ov Overheads, opt Options) Result {
	return core.ProcessorDemandWithOverheads(ts, ov, opt)
}

// DeviWithOverheads evaluates Devi's sufficient test with blocking and
// overhead charges (the extension Devi describes and the paper folds into
// the superposition approach).
func DeviWithOverheads(ts TaskSet, ov Overheads) Result {
	return core.DeviWithOverheads(ts, ov)
}
