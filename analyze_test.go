package edf_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	edf "repro"
)

func analyzeTestSets(t *testing.T, n int) []edf.TaskSet {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	sets := make([]edf.TaskSet, 0, n)
	for len(sets) < n {
		ts, err := edf.Generate(edf.GenConfig{
			N:           5 + rng.Intn(20),
			Utilization: 0.75 + rng.Float64()*0.24,
			PeriodMin:   100, PeriodMax: 10000,
			GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		sets = append(sets, ts)
	}
	return sets
}

// TestAnalyzeMatchesExact pins the recommended entry point to the exact
// verdict.
func TestAnalyzeMatchesExact(t *testing.T) {
	for i, ts := range analyzeTestSets(t, 40) {
		got := edf.Analyze(ts, edf.Options{})
		want := edf.Exact(ts)
		if got.Verdict != want.Verdict {
			t.Errorf("set %d: Analyze=%v Exact=%v", i, got.Verdict, want.Verdict)
		}
	}
}

// TestAnalyzeBatchDeterministic is the facade-level ordering contract of
// the issue: 1 worker and NumCPU workers must produce identical ordered
// results.
func TestAnalyzeBatchDeterministic(t *testing.T) {
	sets := analyzeTestSets(t, 30)
	analyzers, err := edf.ParseAnalyzers("devi,allapprox,cascade")
	if err != nil {
		t.Fatal(err)
	}
	opt := edf.Options{Arithmetic: edf.ArithFloat64}
	one := edf.AnalyzeBatch(context.Background(), sets, analyzers, opt, 1)
	many := edf.AnalyzeBatch(context.Background(), sets, analyzers, opt, runtime.NumCPU())
	if len(one) != len(sets)*len(analyzers) || len(many) != len(one) {
		t.Fatalf("result counts: %d / %d", len(one), len(many))
	}
	for i := range one {
		if one[i].Result != many[i].Result {
			t.Errorf("job %d: results differ across worker counts:\n%+v\n%+v",
				i, one[i].Result, many[i].Result)
		}
		if one[i].SetIndex != i/len(analyzers) {
			t.Errorf("job %d: set index %d out of order", i, one[i].SetIndex)
		}
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	all := edf.Analyzers()
	if len(all) < 8 {
		t.Fatalf("registry too small: %d analyzers", len(all))
	}
	for _, name := range []string{"liu", "devi", "superpos", "pd", "qpa", "dynamic", "allapprox", "cascade"} {
		if _, ok := edf.AnalyzerByName(name); !ok {
			t.Errorf("missing builtin %q", name)
		}
	}
	if _, err := edf.ParseAnalyzers("no-such-test"); err == nil {
		t.Error("unknown analyzer accepted")
	}
	// Registering a clashing name must fail rather than shadow a builtin.
	devi, _ := edf.AnalyzerByName("devi")
	if err := edf.RegisterAnalyzer(devi); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestAnalyzeEvents(t *testing.T) {
	tasks := []edf.EventTask{
		{Stream: edf.PeriodicStream(10), WCET: 2, Deadline: 8},
		{Stream: edf.BurstStream(100, 3, 5), WCET: 4, Deadline: 40},
	}
	pd, _ := edf.AnalyzerByName("pd")
	res, ok := edf.AnalyzeEvents(pd, tasks, edf.Options{})
	if !ok {
		t.Fatal("pd lost event support")
	}
	want := edf.EventProcessorDemand(tasks, edf.Options{})
	if res != want {
		t.Errorf("AnalyzeEvents=%+v EventProcessorDemand=%+v", res, want)
	}

	cascade, _ := edf.AnalyzerByName("cascade")
	cres, ok := edf.AnalyzeEvents(cascade, tasks, edf.Options{})
	if !ok {
		t.Fatal("cascade lost event support")
	}
	if cres.Verdict != want.Verdict {
		t.Errorf("cascade on events: %v, exact %v", cres.Verdict, want.Verdict)
	}

	// QPA has no event path; the facade must say so instead of guessing.
	qpa, _ := edf.AnalyzerByName("qpa")
	if _, ok := edf.AnalyzeEvents(qpa, tasks, edf.Options{}); ok {
		t.Error("qpa claims event support")
	}
}
