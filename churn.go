package edf

import (
	"io"
	"math/rand"

	"repro/internal/churn"
)

// ChurnConfig shapes a generated session-churn scenario: seed workload
// parameters plus the propose/commit/rollback mix.
type ChurnConfig = churn.Config

// ChurnScenario is a replayable session history — a committed seed
// workload and an ordered propose/commit/rollback op stream. Its JSON
// form is what `edfgen -churn` emits and what the bench suite and the
// smoke harness replay.
type ChurnScenario = churn.Scenario

// ChurnOp is one step of a churn scenario.
type ChurnOp = churn.Op

// Churn op kinds.
const (
	ChurnPropose  = churn.OpPropose
	ChurnCommit   = churn.OpCommit
	ChurnRollback = churn.OpRollback
)

// GenerateChurn builds a deterministic churn scenario.
func GenerateChurn(name string, cfg ChurnConfig, rng *rand.Rand) (ChurnScenario, error) {
	return churn.Generate(name, cfg, rng)
}

// ReadChurn parses and validates a churn scenario from JSON.
func ReadChurn(r io.Reader) (ChurnScenario, error) { return churn.Read(r) }
