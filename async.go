package edf

import "repro/internal/async"

// AsyncOptions tune the exact asynchronous analysis.
type AsyncOptions = async.Options

// AsyncResult is the outcome of an exact asynchronous analysis.
type AsyncResult = async.Result

// AsyncExact decides feasibility of an asynchronous periodic set (releases
// exactly at phase + k*period) by an EDF replay over [0, Φmax + 2H), the
// exact horizon of Leung & Merrill.
func AsyncExact(ts TaskSet, opt AsyncOptions) (AsyncResult, error) { return async.Exact(ts, opt) }

// AsyncSufficient applies the synchronous reduction the paper adopts: the
// all-approximated test on the phase-cleared set. Acceptance transfers to
// any phasing; rejection is reported as NotAccepted.
func AsyncSufficient(ts TaskSet, opt Options) Result { return async.Sufficient(ts, opt) }

// AsyncHorizon returns the exact analysis horizon Φmax + 2·hyperperiod.
func AsyncHorizon(ts TaskSet) (int64, bool) { return async.Horizon(ts) }
