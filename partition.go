package edf

import (
	"context"

	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/workload"
)

// Partitioned multiprocessor EDF. A partitioned workload assigns every
// task statically to one of m processors and runs uniprocessor EDF on
// each; the placement engine searches bin-packing heuristics for an
// assignment whose every bin the exact feasibility analysis confirms.

// WorkloadPartitioned is the partitioned multiprocessor workload model.
const WorkloadPartitioned = workload.Partitioned

// Processor describes one processor of a partitioned platform. Speed
// scales capacity: a task with WCET C placed on speed s executes in
// ceil(C/s) time units. Speed 0 means unit speed.
type Processor = workload.Processor

// PartitionedTask is a task plus an optional affinity set restricting
// which processors may host it (empty = any).
type PartitionedTask = workload.PartitionedTask

// PartitionedWorkload wraps an m-processor platform and its task set.
func PartitionedWorkload(procs []Processor, tasks []PartitionedTask) Workload {
	return workload.NewPartitioned(procs, tasks)
}

// PlacementHeuristic names a bin-packing order: first-fit, worst-fit or
// balance.
type PlacementHeuristic = partition.Heuristic

// Placement heuristics, in the order the engine tries them.
const (
	PlaceFirstFit = partition.FirstFit
	PlaceWorstFit = partition.WorstFit
	PlaceBalance  = partition.Balance
)

// Placement is the outcome of a partitioned feasibility analysis: an
// assignment with per-processor verdicts when feasible, or the attempt
// trail and counterexample when no heuristic placed every task.
type Placement = partition.Placement

// PlacementConfig tunes a placement search.
type PlacementConfig = partition.Config

// ProcessorReport is one processor's verified bin.
type ProcessorReport = partition.ProcessorReport

// PlacementAttempt records one heuristic's run.
type PlacementAttempt = partition.Attempt

// PartitionedUnsupportedError reports that a uniprocessor entry point
// was handed a partitioned workload.
type PartitionedUnsupportedError = engine.PartitionedUnsupportedError

// AnalyzePartitioned searches for a feasible partitioned-EDF placement.
// The zero config uses the cascade analyzer, all heuristics in order,
// and one worker per processor; per-bin verdicts are exact, so a
// feasible placement is a proof and an infeasible one carries the
// heuristic rejection trail.
func AnalyzePartitioned(ctx context.Context, wl Workload, cfg PlacementConfig) (Placement, error) {
	return partition.Place(ctx, wl, cfg)
}
