package edf

import (
	"repro/internal/bounds"
	"repro/internal/demand"
)

// BoundKind names a feasibility bound.
type BoundKind = bounds.Kind

// Feasibility bound kinds.
const (
	BoundBaruah        = bounds.KindBaruah
	BoundGeorge        = bounds.KindGeorge
	BoundSuperposition = bounds.KindSuperposition
	BoundBusyPeriod    = bounds.KindBusyPeriod
	BoundHyperperiod   = bounds.KindHyperperiod
)

// BaruahBound returns the feasibility bound of Baruah et al. (exclusive
// upper limit on violation intervals) for constrained-deadline sets with
// U < 1.
func BaruahBound(ts TaskSet) (int64, bool) { return bounds.Baruah(ts) }

// GeorgeBound returns the feasibility bound of George et al.
func GeorgeBound(ts TaskSet) (int64, bool) { return bounds.GeorgeTasks(ts) }

// SuperpositionBound returns the paper's new feasibility bound I_sup
// (Section 4.3), never larger than George's bound where both apply.
func SuperpositionBound(ts TaskSet) (int64, bool) { return bounds.SuperpositionTasks(ts) }

// BusyPeriod returns the length of the synchronous processor busy period.
func BusyPeriod(ts TaskSet) (int64, bool) { return bounds.BusyPeriod(ts) }

// Hyperperiod returns lcm of the periods.
func Hyperperiod(ts TaskSet) (int64, bool) { return bounds.Hyperperiod(ts) }

// BestBound returns the smallest applicable cheap feasibility bound and its
// name.
func BestBound(ts TaskSet) (int64, BoundKind, bool) { return bounds.Best(ts) }

// Dbf returns the exact demand bound function dbf(I, Γ) of the set.
func Dbf(ts TaskSet, I int64) int64 { return demand.DbfSet(ts, I) }

// DbfTask returns the exact demand bound function dbf(I, τ) of one task.
func DbfTask(t Task, I int64) int64 { return demand.DbfTask(t, I) }

// Utilization returns the total utilization as float64.
func Utilization(ts TaskSet) float64 { return ts.UtilizationFloat() }
