// Benchmarks regenerating every result of the paper's evaluation
// (Section 5). Each table and figure has a bench that runs the same
// experiment code as cmd/edfexp at a reduced but shape-preserving scale;
// custom metrics report the paper's effort measure (checked test
// intervals) next to wall-clock time. Run:
//
//	go test -bench=. -benchmem
//
// The full-scale regeneration lives in cmd/edfexp (-paper flag).
package edf_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	edf "repro"
	"repro/internal/core"
	"repro/internal/experiments"
)

// --- Table 1 ------------------------------------------------------------

// BenchmarkTable1 regenerates the paper's Table 1: checked test intervals
// per literature set for Devi, dynamic, all-approximated and processor
// demand.
func BenchmarkTable1(b *testing.B) {
	for _, ex := range edf.Examples() {
		b.Run(ex.Name, func(b *testing.B) {
			var res experiments.Table1Result
			for b.Loop() {
				res = experiments.Table1()
			}
			for _, row := range res.Rows {
				if row.Name != ex.Name {
					continue
				}
				for _, cell := range row.Cells {
					b.ReportMetric(float64(cell.Iterations), cell.Analyzer+"-intervals")
				}
			}
		})
	}
}

// --- Figure 1 -----------------------------------------------------------

// BenchmarkFig1 regenerates the acceptance-rate curves of Figure 1 at a
// reduced sample size and reports the acceptance rates at 94% utilization.
func BenchmarkFig1(b *testing.B) {
	cfg := experiments.Fig1Config{
		SetsPerPoint: 60,
		UtilPercents: []int{80, 88, 94, 98},
		Levels:       []int64{2, 3, 5, 10},
		NMin:         5, NMax: 50,
		Seed: 1,
	}
	var res experiments.Fig1Result
	for b.Loop() {
		res = experiments.Fig1(cfg)
	}
	for _, p := range res.Points {
		if p.UtilPercent != 94 {
			continue
		}
		b.ReportMetric(p.Devi, "devi-accept@94")
		b.ReportMetric(p.SuperPos[5], "sp5-accept@94")
		b.ReportMetric(p.PD, "pd-accept@94")
	}
}

// --- Figure 8 -----------------------------------------------------------

// BenchmarkFig8 regenerates the effort-over-utilization experiment of
// Figure 8 at a reduced sample size and reports the average intervals in
// the hardest bucket (99%).
func BenchmarkFig8(b *testing.B) {
	cfg := experiments.Fig8Config{Sets: 250, NMin: 5, NMax: 50, Seed: 1}
	var res experiments.Fig8Result
	for b.Loop() {
		res = experiments.Fig8(cfg)
	}
	for _, row := range res.Rows {
		if row.UtilPercent != 99 || row.Sets == 0 {
			continue
		}
		for _, e := range row.Efforts {
			b.ReportMetric(e.Avg, e.Analyzer+"-avg@99")
		}
	}
}

// --- Figure 9 -----------------------------------------------------------

// BenchmarkFig9 regenerates the period-ratio experiment of Figure 9 at a
// reduced scale (ratios up to 10^4 here; cmd/edfexp runs the full 10^6)
// and reports how the averages move with the ratio.
func BenchmarkFig9(b *testing.B) {
	cfg := experiments.Fig9Config{
		SetsPerRatio: 30,
		Ratios:       []int64{100, 10000},
		NMin:         5, NMax: 50,
		Seed: 1,
	}
	var res experiments.Fig9Result
	for b.Loop() {
		res = experiments.Fig9(cfg)
	}
	lo, hi := res.Rows[0], res.Rows[len(res.Rows)-1]
	for _, e := range lo.Efforts {
		b.ReportMetric(e.Avg, e.Analyzer+"-avg@100")
	}
	for _, e := range hi.Efforts {
		b.ReportMetric(e.Avg, e.Analyzer+"-avg@10000")
	}
}

// --- Single-set algorithm benchmarks -------------------------------------

// benchSet is a demanding random set shared by the per-algorithm benches.
func benchSet(b *testing.B, n int, u float64, ratio int64) edf.TaskSet {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	ts, err := edf.Generate(edf.GenConfig{
		N: n, Utilization: u,
		PeriodMin: 1000, PeriodMax: 1000 * ratio,
		LogUniformPeriods: true,
		GapMean:           0.25,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// BenchmarkAlgorithms compares the wall-clock cost of every registered
// analyzer on one high-utilization set with a large period ratio (the
// regime where the paper's tests shine). New analyzers benchmark
// themselves by registering with the engine.
func BenchmarkAlgorithms(b *testing.B) {
	ts := benchSet(b, 50, 0.97, 10000)
	opt := edf.Options{Arithmetic: edf.ArithFloat64}
	for _, a := range edf.Analyzers() {
		b.Run(a.Info().Label, func(b *testing.B) {
			var r edf.Result
			for b.Loop() {
				r = a.Analyze(ts, opt)
			}
			b.ReportMetric(float64(r.Iterations), "intervals")
		})
	}
}

// BenchmarkAnalyzeBatch measures the batch engine on a production-shaped
// workload — many task sets through the recommended cascade — sequential
// versus one worker per CPU. The parallel run must scale with the worker
// pool; this is the acceptance benchmark of the engine layer.
func BenchmarkAnalyzeBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	sets := make([]edf.TaskSet, 120)
	for i := range sets {
		u := 0.85 + 0.14*float64(i)/float64(len(sets))
		ts, err := edf.Generate(edf.GenConfig{
			N: 30 + i%40, Utilization: u,
			PeriodMin: 1000, PeriodMax: 100000,
			GapMean: 0.25,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = ts
	}
	analyzers, err := edf.ParseAnalyzers("cascade")
	if err != nil {
		b.Fatal(err)
	}
	opt := edf.Options{Arithmetic: edf.ArithFloat64}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for b.Loop() {
				res := edf.AnalyzeBatch(context.Background(), sets, analyzers, opt, workers)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationArithmetic quantifies the cost of exact big.Rat
// accumulators versus the float64 fast path in the all-approximated test
// (DESIGN.md: arithmetic modes).
func BenchmarkAblationArithmetic(b *testing.B) {
	ts := benchSet(b, 50, 0.97, 1000)
	for _, tc := range []struct {
		name string
		opt  edf.Options
	}{
		{"Exact", edf.Options{Arithmetic: edf.ArithExact}},
		{"Float64", edf.Options{Arithmetic: edf.ArithFloat64}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for b.Loop() {
				edf.AllApprox(ts, tc.opt)
			}
		})
	}
}

// BenchmarkAblationRevisionOrder compares the revision strategies of the
// all-approximated test (DESIGN.md: the paper leaves the order open).
func BenchmarkAblationRevisionOrder(b *testing.B) {
	ts := benchSet(b, 60, 0.98, 1000)
	for _, tc := range []struct {
		name  string
		order core.RevisionOrder
	}{
		{"FIFO", core.ReviseFIFO},
		{"LIFO", core.ReviseLIFO},
		{"MaxError", core.ReviseMaxError},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opt := edf.Options{Arithmetic: edf.ArithFloat64, RevisionOrder: tc.order}
			var r edf.Result
			for b.Loop() {
				r = edf.AllApprox(ts, opt)
			}
			b.ReportMetric(float64(r.Iterations), "intervals")
			b.ReportMetric(float64(r.Revisions), "revisions")
		})
	}
}

// BenchmarkAblationBounds compares the feasibility bounds as processor
// demand test horizons (Section 4.3: superposition <= George <= Baruah).
func BenchmarkAblationBounds(b *testing.B) {
	ts := benchSet(b, 40, 0.95, 100)
	for _, kind := range []edf.BoundKind{
		edf.BoundBaruah, edf.BoundGeorge, edf.BoundSuperposition,
	} {
		b.Run(string(kind), func(b *testing.B) {
			opt := edf.Options{Bound: kind}
			var r edf.Result
			for b.Loop() {
				r = edf.ProcessorDemand(ts, opt)
			}
			if r.Verdict == edf.Undecided {
				b.Skip("bound not applicable")
			}
			b.ReportMetric(float64(r.Iterations), "intervals")
			b.ReportMetric(float64(r.Bound), "bound")
		})
	}
}

// --- Micro benchmarks ------------------------------------------------------

// BenchmarkDbf measures a single demand bound function evaluation.
func BenchmarkDbf(b *testing.B) {
	ts := benchSet(b, 100, 0.9, 100)
	var sink int64
	I := int64(1_000_000)
	for b.Loop() {
		sink += edf.Dbf(ts, I)
	}
	_ = sink
}

// BenchmarkSimulate measures the EDF simulator on a 100-task set.
func BenchmarkSimulate(b *testing.B) {
	ts := benchSet(b, 100, 0.9, 10)
	for b.Loop() {
		if _, err := edf.Simulate(ts, edf.SimOptions{Horizon: 1_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures task set generation.
func BenchmarkGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := edf.GenConfig{N: 100, Utilization: 0.95, PeriodMin: 1000, PeriodMax: 100000, GapMean: 0.3}
	for b.Loop() {
		if _, err := edf.Generate(cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWCRT measures Spuri's response time analysis (the independent
// exactness oracle) on a 20-task set.
func BenchmarkWCRT(b *testing.B) {
	ts := benchSet(b, 20, 0.9, 10)
	for b.Loop() {
		if _, ok := edf.WCRTAll(ts, edf.ResponseOptions{}); !ok {
			b.Fatal("analysis failed")
		}
	}
}

// BenchmarkSensitivityScaling measures the critical scaling factor search,
// the interactive design-space query motivating fast exact tests: each
// search evaluates the exact test ~30 times.
func BenchmarkSensitivityScaling(b *testing.B) {
	ts := benchSet(b, 30, 0.8, 100)
	var num int64
	for b.Loop() {
		var err error
		num, err = edf.CriticalScaling(ts, 1000, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(num)/1000, "alpha")
}

// BenchmarkAsyncExact measures the exact asynchronous replay analysis.
func BenchmarkAsyncExact(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	ts, err := edf.Generate(edf.GenConfig{
		N: 10, Utilization: 0.85, PeriodMin: 10, PeriodMax: 60, GapMean: 0.1,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ts {
		ts[i].Phase = rng.Int63n(ts[i].Period)
	}
	for b.Loop() {
		res, err := edf.AsyncExact(ts, edf.AsyncOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict == edf.Undecided {
			b.Fatal("undecided")
		}
	}
}

// BenchmarkRTCCompare regenerates the Section 3.6 comparison (real-time
// calculus curves vs Devi vs exact) at a reduced scale and reports the
// acceptance rates at 75% utilization.
func BenchmarkRTCCompare(b *testing.B) {
	cfg := experiments.RTCConfig{
		SetsPerPoint: 60,
		UtilPercents: []int{60, 75, 90},
		NMin:         5, NMax: 30,
		Seed: 1,
	}
	var res experiments.RTCResult
	for b.Loop() {
		res = experiments.RTCCompare(cfg)
	}
	for _, p := range res.Points {
		if p.UtilPercent != 75 {
			continue
		}
		b.ReportMetric(p.RTC, "rtc-accept@75")
		b.ReportMetric(p.Devi, "devi-accept@75")
		b.ReportMetric(p.Exact, "exact-accept@75")
	}
}

// BenchmarkOverheads measures the blocking-aware all-approximated test
// (SRP blocking + context switch charges).
func BenchmarkOverheads(b *testing.B) {
	ts := benchSet(b, 50, 0.9, 100)
	for i := range ts {
		if i%3 == 0 {
			ts[i].CriticalSection = max(ts[i].WCET/4, 1)
		}
	}
	ov := edf.Overheads{ContextSwitch: 2}
	opt := edf.Options{Arithmetic: edf.ArithFloat64}
	for b.Loop() {
		edf.AllApproxWithOverheads(ts, ov, opt)
	}
}
